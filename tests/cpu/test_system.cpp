// System tests: the RV32I CPU running programs over the live AHB, under
// the protocol monitor and the power estimator; coexistence with DMA.

#include <gtest/gtest.h>

#include "ahb/ahb.hpp"
#include "cpu/cpu.hpp"
#include "power/power.hpp"
#include "sim/sim.hpp"

namespace ahbp::cpu {
namespace {

using ahb::AhbBus;
using ahb::BurstMaster;
using ahb::BusMonitor;
using ahb::DefaultMaster;
using ahb::MemorySlave;

struct CpuBench {
  explicit CpuBench(const std::vector<std::uint32_t>& program,
                    CpuMaster::Config cfg = CpuMaster::Config{})
      : top(nullptr, "top"),
        clk(&top, "clk", sim::SimTime::ns(10), 0.5, sim::SimTime::ns(10)),
        bus(&top, "ahb", clk),
        dm(&top, "dm", bus),
        cpu(&top, "cpu", bus, cfg),
        rom(&top, "rom", bus, {.base = 0x0000, .size = 0x1000}),
        ram(&top, "ram", bus, {.base = 0x1000, .size = 0x2000}),
        mon_cfg{.fatal = false},
        mon(&top, "mon", bus, mon_cfg) {
    load_program(rom, cfg.reset_pc, program);
    bus.finalize();
  }

  /// Runs until the CPU halts (or the cycle limit trips).
  void run_to_halt(unsigned max_cycles = 100000) {
    while (!cpu.halted() && max_cycles > 0) {
      const unsigned chunk = std::min(max_cycles, 1000u);
      kernel.run(sim::SimTime::ns(10) * chunk);
      max_cycles -= chunk;
    }
  }

  sim::Kernel kernel;
  sim::Module top;
  sim::Clock clk;
  AhbBus bus;
  DefaultMaster dm;
  CpuMaster cpu;
  MemorySlave rom;
  MemorySlave ram;
  BusMonitor::Config mon_cfg;
  BusMonitor mon;
};

TEST(CpuSystem, FibonacciOverTheBus) {
  CpuBench b(progs::fibonacci(20));
  b.run_to_halt();
  ASSERT_TRUE(b.cpu.halted());
  EXPECT_EQ(b.cpu.core().reg(10), 6765u);
  EXPECT_TRUE(b.mon.violations().empty());
  EXPECT_GT(b.cpu.stats().fetches, 100u);
}

TEST(CpuSystem, MemcpyThroughTwoSlaves) {
  CpuBench b(progs::memcpy_words(0x1000, 0x2000, 32));
  for (int i = 0; i < 32; ++i) b.ram.poke(0x0 + 4 * i, 0xFEED0000u + i);
  b.run_to_halt();
  ASSERT_TRUE(b.cpu.halted());
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(b.ram.peek(0x1000 + 4 * i), 0xFEED0000u + i) << i;
  }
  EXPECT_EQ(b.cpu.stats().loads, 32u);
  EXPECT_EQ(b.cpu.stats().stores, 32u);
  EXPECT_TRUE(b.mon.violations().empty());
}

TEST(CpuSystem, ByteCopyUsesReadModifyWrite) {
  CpuBench b(progs::memcpy_bytes(0x1000, 0x1100, 8));
  b.ram.poke(0x0, 0x44332211);
  b.ram.poke(0x4, 0x88776655);
  b.run_to_halt();
  ASSERT_TRUE(b.cpu.halted());
  EXPECT_EQ(b.ram.peek(0x100), 0x44332211u);
  EXPECT_EQ(b.ram.peek(0x104), 0x88776655u);
  EXPECT_EQ(b.cpu.stats().rmw_stores, 8u);
}

TEST(CpuSystem, FillRandomMatchesReferenceExecutor) {
  // Same program on the bus and on the flat reference harness (the core
  // test file) must produce identical memory images.
  CpuBench b(progs::fill_random(0x1000, 16, 0xCAFE));
  b.run_to_halt();
  ASSERT_TRUE(b.cpu.halted());

  // Reference run.
  Rv32Core ref;
  std::vector<std::uint32_t> mem(0x4000 / 4, 0);
  const auto prog = progs::fill_random(0x1000, 16, 0xCAFE);
  for (std::size_t i = 0; i < prog.size(); ++i) mem[i] = prog[i];
  while (!ref.halted()) {
    const MemOp op = ref.execute(mem[ref.fetch_addr() / 4]);
    if (op.kind == MemOp::Kind::kLoad) {
      ref.complete_load(op, mem[(op.addr & ~3u) / 4]);
    } else if (op.kind == MemOp::Kind::kStore) {
      auto& w = mem[(op.addr & ~3u) / 4];
      w = op.bytes == 4 ? op.wdata : (w & ~op.wmask) | op.wdata;
    }
  }
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(b.ram.peek(4 * i), mem[(0x1000 + 4 * i) / 4]) << i;
  }
  EXPECT_EQ(b.cpu.core().reg(10), ref.reg(10));
}

TEST(CpuSystem, WaitStatesSlowButDontBreakExecution) {
  sim::Kernel k;
  sim::Module top(nullptr, "top");
  sim::Clock clk(&top, "clk", sim::SimTime::ns(10), 0.5, sim::SimTime::ns(10));
  AhbBus bus(&top, "ahb", clk);
  DefaultMaster dm(&top, "dm", bus);
  CpuMaster cpu(&top, "cpu", bus, {});
  MemorySlave rom(&top, "rom", bus,
                  {.base = 0x0000, .size = 0x1000, .wait_states = 2});
  load_program(rom, 0, progs::fibonacci(10));
  bus.finalize();
  k.run(sim::SimTime::us(100));
  ASSERT_TRUE(cpu.halted());
  EXPECT_EQ(cpu.core().reg(10), 55u);
}

TEST(CpuSystem, YieldingCpuCoexistsWithDma) {
  sim::Kernel k;
  sim::Module top(nullptr, "top");
  sim::Clock clk(&top, "clk", sim::SimTime::ns(10), 0.5, sim::SimTime::ns(10));
  AhbBus bus(&top, "ahb", clk);
  DefaultMaster dm(&top, "dm", bus);
  CpuMaster cpu(&top, "cpu", bus,
                {.reset_pc = 0, .yield_every = 16, .yield_cycles = 4});
  BurstMaster dma(&top, "dma", bus,
                  {.addr_base = 0x2000,
                   .addr_range = 0x1000,
                   .burst = ahb::Burst::kIncr4,
                   .seed = 9});
  MemorySlave rom(&top, "rom", bus, {.base = 0x0000, .size = 0x1000});
  MemorySlave ram(&top, "ram", bus, {.base = 0x1000, .size = 0x1000});
  MemorySlave dmaram(&top, "dmaram", bus, {.base = 0x2000, .size = 0x1000});
  load_program(rom, 0, progs::fibonacci(24));
  bus.finalize();
  ahb::BusMonitor::Config mc{.fatal = false};
  ahb::BusMonitor mon(&top, "mon", bus, mc);

  k.run(sim::SimTime::us(200));
  ASSERT_TRUE(cpu.halted());
  EXPECT_EQ(cpu.core().reg(10), 46368u);  // fib(24)
  EXPECT_GT(dma.stats().bursts, 2u);      // DMA made progress too
  EXPECT_EQ(dma.stats().read_mismatches, 0u);
  EXPECT_TRUE(mon.violations().empty());
}

TEST(CpuSystem, PowerAnalysisOfARealProgram) {
  CpuBench b(progs::memcpy_words(0x1000, 0x2000, 64));
  power::AhbPowerEstimator est(&b.top, "power", b.bus);
  for (int i = 0; i < 64; ++i) b.ram.poke(4 * i, 0xA5A50000u + i * 0x111);
  b.run_to_halt();
  ASSERT_TRUE(b.cpu.halted());
  EXPECT_GT(est.total_energy(), 0.0);
  // The serialized core alternates address and data phases, so its bus
  // signature is READ/IDLE interleave with essentially no arbitration
  // (it owns the bus for the whole program).
  EXPECT_GT(power::data_transfer_share(est.fsm()), 0.4);
  EXPECT_LT(power::arbitration_share(est.fsm()), 0.05);
  const auto& tab = est.fsm().instructions();
  ASSERT_TRUE(tab.count("IDLE_READ"));
  ASSERT_TRUE(tab.count("READ_IDLE"));
  EXPECT_GT(tab.at("IDLE_READ").count, 100u);
}

TEST(CpuSystem, InstructionsPerCycle) {
  CpuBench b(progs::fibonacci(30));
  b.run_to_halt();
  ASSERT_TRUE(b.cpu.halted());
  const double cycles =
      static_cast<double>(b.kernel.now() / sim::SimTime::ns(10));
  const double cpi = cycles / static_cast<double>(b.cpu.core().instret());
  // Serialized fetch (2 cycles) + occasional memory ops: CPI in [2, 6].
  EXPECT_GT(cpi, 1.5);
  EXPECT_LT(cpi, 6.0);
}

}  // namespace
}  // namespace ahbp::cpu
