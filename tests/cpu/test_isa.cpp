// ISA tests: encoder/decoder round-trips (property style over all
// instructions), immediate sign handling, and disassembly.

#include <gtest/gtest.h>

#include "cpu/encode.hpp"
#include "cpu/isa.hpp"

namespace ahbp::cpu {
namespace {

TEST(Decode, RTypeRoundTrip) {
  struct Case {
    std::uint32_t word;
    Op op;
  };
  const Case cases[] = {
      {enc::add(1, 2, 3), Op::kAdd},   {enc::sub(4, 5, 6), Op::kSub},
      {enc::sll(7, 8, 9), Op::kSll},   {enc::slt(10, 11, 12), Op::kSlt},
      {enc::sltu(13, 14, 15), Op::kSltu}, {enc::xor_(16, 17, 18), Op::kXor},
      {enc::srl(19, 20, 21), Op::kSrl},   {enc::sra(22, 23, 24), Op::kSra},
      {enc::or_(25, 26, 27), Op::kOr},    {enc::and_(28, 29, 30), Op::kAnd},
  };
  for (const auto& c : cases) {
    const Instr in = decode(c.word);
    EXPECT_EQ(in.op, c.op) << to_string(c.op);
  }
  const Instr in = decode(enc::add(1, 2, 3));
  EXPECT_EQ(in.rd, 1);
  EXPECT_EQ(in.rs1, 2);
  EXPECT_EQ(in.rs2, 3);
}

TEST(Decode, ITypeImmediatesSignExtend) {
  Instr in = decode(enc::addi(5, 6, -1));
  EXPECT_EQ(in.op, Op::kAddi);
  EXPECT_EQ(in.imm, -1);
  in = decode(enc::addi(5, 6, 2047));
  EXPECT_EQ(in.imm, 2047);
  in = decode(enc::addi(5, 6, -2048));
  EXPECT_EQ(in.imm, -2048);
  in = decode(enc::lw(3, 4, -16));
  EXPECT_EQ(in.op, Op::kLw);
  EXPECT_EQ(in.imm, -16);
}

TEST(Decode, ShiftImmediates) {
  Instr in = decode(enc::slli(1, 2, 31));
  EXPECT_EQ(in.op, Op::kSlli);
  EXPECT_EQ(in.imm, 31);
  in = decode(enc::srai(1, 2, 7));
  EXPECT_EQ(in.op, Op::kSrai);
  EXPECT_EQ(in.imm, 7);
  in = decode(enc::srli(1, 2, 1));
  EXPECT_EQ(in.op, Op::kSrli);
}

TEST(Decode, StoreImmediates) {
  Instr in = decode(enc::sw(7, 8, -4));
  EXPECT_EQ(in.op, Op::kSw);
  EXPECT_EQ(in.rs2, 7);
  EXPECT_EQ(in.rs1, 8);
  EXPECT_EQ(in.imm, -4);
  in = decode(enc::sb(1, 2, 2047));
  EXPECT_EQ(in.imm, 2047);
  in = decode(enc::sh(1, 2, -2048));
  EXPECT_EQ(in.imm, -2048);
}

TEST(Decode, BranchOffsets) {
  for (const std::int32_t off : {-4096, -20, -2, 2, 24, 4094}) {
    const Instr in = decode(enc::beq(1, 2, off));
    EXPECT_EQ(in.op, Op::kBeq);
    EXPECT_EQ(in.imm, off) << off;
  }
  EXPECT_EQ(decode(enc::bne(1, 2, 8)).op, Op::kBne);
  EXPECT_EQ(decode(enc::blt(1, 2, 8)).op, Op::kBlt);
  EXPECT_EQ(decode(enc::bge(1, 2, 8)).op, Op::kBge);
  EXPECT_EQ(decode(enc::bltu(1, 2, 8)).op, Op::kBltu);
  EXPECT_EQ(decode(enc::bgeu(1, 2, 8)).op, Op::kBgeu);
}

TEST(Decode, JalOffsets) {
  for (const std::int32_t off : {-1048576, -20, 2, 48, 1048574}) {
    const Instr in = decode(enc::jal(1, off));
    EXPECT_EQ(in.op, Op::kJal);
    EXPECT_EQ(in.imm, off) << off;
  }
}

TEST(Decode, UpperImmediates) {
  Instr in = decode(enc::lui(3, 0xFFFFF));
  EXPECT_EQ(in.op, Op::kLui);
  EXPECT_EQ(static_cast<std::uint32_t>(in.imm), 0xFFFFF000u);
  in = decode(enc::auipc(3, 1));
  EXPECT_EQ(in.op, Op::kAuipc);
  EXPECT_EQ(in.imm, 0x1000);
}

TEST(Decode, SystemAndFence) {
  EXPECT_EQ(decode(enc::ecall()).op, Op::kEcall);
  EXPECT_EQ(decode(enc::ebreak()).op, Op::kEbreak);
  EXPECT_EQ(decode(enc::fence()).op, Op::kFence);
  EXPECT_EQ(decode(enc::nop()).op, Op::kAddi);
}

TEST(Decode, InvalidEncodings) {
  EXPECT_EQ(decode(0x00000000).op, Op::kInvalid);
  EXPECT_EQ(decode(0xFFFFFFFF).op, Op::kInvalid);
  EXPECT_EQ(decode(0x0000007F).op, Op::kInvalid);
}

TEST(Decode, InstrClassPredicates) {
  EXPECT_TRUE(decode(enc::lw(1, 2, 0)).is_load());
  EXPECT_TRUE(decode(enc::sb(1, 2, 0)).is_store());
  EXPECT_TRUE(decode(enc::beq(1, 2, 4)).is_branch());
  EXPECT_FALSE(decode(enc::add(1, 2, 3)).is_load());
  EXPECT_FALSE(decode(enc::jal(0, 4)).is_branch());
}

TEST(Disassemble, ReadableOutput) {
  EXPECT_EQ(disassemble(enc::addi(5, 5, -1)), "addi x5, x5, -1");
  EXPECT_EQ(disassemble(enc::lw(1, 2, 8)), "lw x1, 8(x2)");
  EXPECT_EQ(disassemble(enc::sw(7, 3, 0)), "sw x7, 0(x3)");
  EXPECT_EQ(disassemble(enc::beq(5, 0, 24)), "beq x5, x0, 24");
  EXPECT_EQ(disassemble(enc::add(10, 10, 1)), "add x10, x10, x1");
  EXPECT_EQ(disassemble(enc::ebreak()), "ebreak");
  EXPECT_EQ(disassemble(enc::lui(2, 0x12)), "lui x2, 0x12");
}

}  // namespace
}  // namespace ahbp::cpu
