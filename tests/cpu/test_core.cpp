// Architectural tests of Rv32Core against a flat memory harness --
// no simulation kernel involved.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "cpu/core.hpp"
#include "cpu/encode.hpp"
#include "cpu/programs.hpp"

namespace ahbp::cpu {
namespace {

/// Flat word memory + run loop (the reference executor).
struct Harness {
  explicit Harness(std::size_t bytes = 0x4000) : mem(bytes / 4, 0) {}

  void load(std::uint32_t base, const std::vector<std::uint32_t>& words) {
    for (std::size_t i = 0; i < words.size(); ++i) mem.at(base / 4 + i) = words[i];
  }
  [[nodiscard]] std::uint32_t read(std::uint32_t addr) const {
    return mem.at(addr / 4);
  }
  void write(std::uint32_t addr, std::uint32_t v) { mem.at(addr / 4) = v; }

  /// Runs until halt or the instruction limit; returns instructions run.
  std::uint64_t run(Rv32Core& core, std::uint64_t max_instr = 100000) {
    std::uint64_t n = 0;
    while (!core.halted() && n < max_instr) {
      const MemOp op = core.execute(read(core.fetch_addr()));
      switch (op.kind) {
        case MemOp::Kind::kLoad:
          core.complete_load(op, read(op.addr & ~3u));
          break;
        case MemOp::Kind::kStore: {
          const std::uint32_t old = read(op.addr & ~3u);
          write(op.addr & ~3u,
                op.bytes == 4 ? op.wdata : (old & ~op.wmask) | op.wdata);
          break;
        }
        case MemOp::Kind::kHalt:
          return n;
        case MemOp::Kind::kNone:
          break;
      }
      ++n;
    }
    return n;
  }

  std::vector<std::uint32_t> mem;
};

TEST(Core, X0IsHardwiredZero) {
  Harness h;
  h.load(0, {enc::addi(0, 0, 123), enc::add(1, 0, 0), enc::ebreak()});
  Rv32Core core;
  h.run(core);
  EXPECT_EQ(core.reg(0), 0u);
  EXPECT_EQ(core.reg(1), 0u);
}

TEST(Core, AluImmediateOps) {
  Harness h;
  h.load(0, {
                enc::addi(1, 0, 100),    // x1 = 100
                enc::addi(2, 1, -50),    // x2 = 50
                enc::slti(3, 2, 51),     // x3 = 1
                enc::sltiu(4, 2, 49),    // x4 = 0
                enc::xori(5, 1, 0xFF),   // x5 = 100 ^ 255
                enc::ori(6, 1, 0x0F),    // x6 = 100 | 15
                enc::andi(7, 1, 0x3C),   // x7 = 100 & 60
                enc::slli(8, 1, 4),      // x8 = 1600
                enc::srli(9, 8, 2),      // x9 = 400
                enc::ebreak(),
            });
  Rv32Core core;
  h.run(core);
  EXPECT_EQ(core.reg(1), 100u);
  EXPECT_EQ(core.reg(2), 50u);
  EXPECT_EQ(core.reg(3), 1u);
  EXPECT_EQ(core.reg(4), 0u);
  EXPECT_EQ(core.reg(5), 100u ^ 255u);
  EXPECT_EQ(core.reg(6), 100u | 15u);
  EXPECT_EQ(core.reg(7), 100u & 60u);
  EXPECT_EQ(core.reg(8), 1600u);
  EXPECT_EQ(core.reg(9), 400u);
}

TEST(Core, SignedShiftAndCompare) {
  Harness h;
  h.load(0, {
                enc::addi(1, 0, -8),    // x1 = -8
                enc::srai(2, 1, 1),     // x2 = -4
                enc::srli(3, 1, 28),    // x3 = 0xF (logical)
                enc::slti(4, 1, 0),     // x4 = 1 (-8 < 0)
                enc::sltiu(5, 1, 1),    // x5 = 0 (0xFFFFFFF8 not < 1)
                enc::ebreak(),
            });
  Rv32Core core;
  h.run(core);
  EXPECT_EQ(static_cast<std::int32_t>(core.reg(2)), -4);
  EXPECT_EQ(core.reg(3), 0xFu);
  EXPECT_EQ(core.reg(4), 1u);
  EXPECT_EQ(core.reg(5), 0u);
}

TEST(Core, RegisterRegisterOps) {
  Harness h;
  h.load(0, {
                enc::addi(1, 0, 12), enc::addi(2, 0, 5),
                enc::add(3, 1, 2),   // 17
                enc::sub(4, 1, 2),   // 7
                enc::sll(5, 1, 2),   // 12 << 5
                enc::xor_(6, 1, 2),  // 9
                enc::or_(7, 1, 2),   // 13
                enc::and_(8, 1, 2),  // 4
                enc::slt(9, 2, 1),   // 1
                enc::sltu(10, 1, 2), // 0
                enc::ebreak(),
            });
  Rv32Core core;
  h.run(core);
  EXPECT_EQ(core.reg(3), 17u);
  EXPECT_EQ(core.reg(4), 7u);
  EXPECT_EQ(core.reg(5), 12u << 5);
  EXPECT_EQ(core.reg(6), 9u);
  EXPECT_EQ(core.reg(7), 13u);
  EXPECT_EQ(core.reg(8), 4u);
  EXPECT_EQ(core.reg(9), 1u);
  EXPECT_EQ(core.reg(10), 0u);
}

TEST(Core, LuiAuipc) {
  Harness h;
  h.load(0, {enc::lui(1, 0x12345), enc::auipc(2, 1), enc::ebreak()});
  Rv32Core core;
  h.run(core);
  EXPECT_EQ(core.reg(1), 0x12345000u);
  EXPECT_EQ(core.reg(2), 4u + 0x1000u);  // pc of auipc is 4
}

TEST(Core, BranchesTakenAndNot) {
  Harness h;
  // if (x1 == x2) x3 = 1 else x3 = 2; then halt.
  h.load(0, {
                enc::addi(1, 0, 7),
                enc::addi(2, 0, 7),
                enc::beq(1, 2, 12),   // -> taken path
                enc::addi(3, 0, 2),   // skipped
                enc::jal(0, 8),       // skipped
                enc::addi(3, 0, 1),   // taken path
                enc::ebreak(),
            });
  Rv32Core core;
  h.run(core);
  EXPECT_EQ(core.reg(3), 1u);
}

TEST(Core, JalAndJalrLinkProperly) {
  Harness h;
  // call +12 (a "function" that sets x5 and returns), then halt.
  h.load(0, {
                enc::jal(1, 12),        // 0: call -> 12, x1 = 4
                enc::addi(6, 0, 1),     // 4: after return
                enc::ebreak(),          // 8
                enc::addi(5, 0, 42),    // 12: body
                enc::jalr(0, 1, 0),     // 16: return to x1 (= 4)
            });
  Rv32Core core;
  h.run(core);
  EXPECT_EQ(core.reg(5), 42u);
  EXPECT_EQ(core.reg(6), 1u);
  EXPECT_EQ(core.reg(1), 4u);
}

TEST(Core, WordLoadsAndStores) {
  Harness h;
  h.load(0, {
                enc::addi(1, 0, 0x100),
                enc::addi(2, 0, -123),
                enc::sw(2, 1, 0),
                enc::lw(3, 1, 0),
                enc::ebreak(),
            });
  Rv32Core core;
  h.run(core);
  EXPECT_EQ(static_cast<std::int32_t>(core.reg(3)), -123);
  EXPECT_EQ(static_cast<std::int32_t>(h.read(0x100)), -123);
}

TEST(Core, SubWordLoadsSignAndZeroExtend) {
  Harness h;
  h.write(0x100, 0x80FF7F01);  // bytes: 01 7F FF 80 (LSB first)
  h.load(0, {
                enc::addi(1, 0, 0x100),
                enc::lb(2, 1, 0),    // 0x01 -> 1
                enc::lb(3, 1, 2),    // 0xFF -> -1
                enc::lbu(4, 1, 2),   // 0xFF -> 255
                enc::lh(5, 1, 2),    // 0x80FF -> sign-extended
                enc::lhu(6, 1, 2),   // 0x80FF
                enc::lh(7, 1, 0),    // 0x7F01
                enc::ebreak(),
            });
  Rv32Core core;
  h.run(core);
  EXPECT_EQ(core.reg(2), 1u);
  EXPECT_EQ(static_cast<std::int32_t>(core.reg(3)), -1);
  EXPECT_EQ(core.reg(4), 255u);
  EXPECT_EQ(core.reg(5), 0xFFFF80FFu);
  EXPECT_EQ(core.reg(6), 0x80FFu);
  EXPECT_EQ(core.reg(7), 0x7F01u);
}

TEST(Core, SubWordStoresMergeLanes) {
  Harness h;
  h.write(0x100, 0xAABBCCDD);
  h.load(0, {
                enc::addi(1, 0, 0x100),
                enc::addi(2, 0, 0x11),
                enc::sb(2, 1, 1),      // lane 1
                enc::addi(3, 0, 0x7EE),
                enc::sh(3, 1, 2),      // lanes 2-3
                enc::ebreak(),
            });
  Rv32Core core;
  h.run(core);
  EXPECT_EQ(h.read(0x100), 0x07EE11DDu);
}

TEST(Core, HaltsOnEbreakEcallInvalid) {
  for (const std::uint32_t stop : {enc::ebreak(), enc::ecall(), 0u}) {
    Harness h;
    h.load(0, {enc::addi(1, 0, 1), stop, enc::addi(1, 0, 99)});
    Rv32Core core;
    h.run(core);
    EXPECT_TRUE(core.halted());
    EXPECT_EQ(core.reg(1), 1u);  // never reached the instruction after
    EXPECT_EQ(core.pc(), 4u);    // pc parked at the halting instruction
  }
}

TEST(Core, InstretCountsRetiredInstructions) {
  Harness h;
  h.load(0, {enc::nop(), enc::nop(), enc::nop(), enc::ebreak()});
  Rv32Core core;
  h.run(core);
  EXPECT_EQ(core.instret(), 3u);
}

// --- the canned programs, validated on the reference executor ------------

TEST(Programs, SumArray) {
  Harness h;
  const std::uint32_t data = 0x1000;
  for (int i = 0; i < 10; ++i) h.write(data + 4 * i, 10 + i);
  h.load(0, progs::sum_array(data, 10));
  Rv32Core core;
  h.run(core);
  EXPECT_TRUE(core.halted());
  EXPECT_EQ(core.reg(10), 145u);  // 10+11+...+19
}

TEST(Programs, Fibonacci) {
  const std::pair<unsigned, std::uint32_t> cases[] = {
      {0, 0}, {1, 1}, {2, 1}, {7, 13}, {20, 6765}};
  for (const auto& [n, expect] : cases) {
    Harness h;
    h.load(0, progs::fibonacci(n));
    Rv32Core core;
    h.run(core);
    EXPECT_EQ(core.reg(10), expect) << "fib(" << n << ")";
  }
}

TEST(Programs, MemcpyWords) {
  Harness h;
  for (int i = 0; i < 16; ++i) h.write(0x1000 + 4 * i, 0xC0DE0000u + i);
  h.load(0, progs::memcpy_words(0x1000, 0x2000, 16));
  Rv32Core core;
  h.run(core);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(h.read(0x2000 + 4 * i), 0xC0DE0000u + i) << i;
  }
}

TEST(Programs, MemcpyBytes) {
  Harness h;
  h.write(0x1000, 0x44332211);
  h.write(0x1004, 0x88776655);
  h.load(0, progs::memcpy_bytes(0x1001, 0x2002, 5));
  Rv32Core core;
  h.run(core);
  // bytes 22 33 44 55 66 copied to 0x2002..0x2006
  EXPECT_EQ(h.read(0x2000) >> 16, 0x3322u);
  EXPECT_EQ(h.read(0x2004) & 0xFFFFFFu, 0x665544u);
}

TEST(Programs, Crc32MatchesHostImplementation) {
  // Host-side reference CRC32 (reflected, poly 0xEDB88320).
  auto host_crc = [](const std::vector<std::uint32_t>& data) {
    std::uint32_t crc = 0xFFFFFFFFu;
    for (std::uint32_t w : data) {
      crc ^= w;
      for (int b = 0; b < 32; ++b) {
        crc = (crc & 1u) != 0 ? (crc >> 1) ^ 0xEDB88320u : crc >> 1;
      }
    }
    return ~crc;
  };

  Harness h;
  std::vector<std::uint32_t> data;
  for (int i = 0; i < 12; ++i) {
    data.push_back(0x9E3779B9u * (i + 1));
    h.write(0x1000 + 4 * i, data.back());
  }
  h.load(0, progs::crc32_words(0x1000, 12));
  Rv32Core core;
  h.run(core, 1000000);
  ASSERT_TRUE(core.halted());
  EXPECT_EQ(core.reg(10), host_crc(data));
}

TEST(Programs, Crc32OfEmptyInput) {
  Harness h;
  h.load(0, progs::crc32_words(0x1000, 0));
  Rv32Core core;
  h.run(core);
  ASSERT_TRUE(core.halted());
  EXPECT_EQ(core.reg(10), 0u);  // ~0xFFFFFFFF
}

TEST(Programs, BubbleSortSortsDescendingInput) {
  Harness h;
  const unsigned n = 12;
  for (unsigned i = 0; i < n; ++i) h.write(0x1000 + 4 * i, n - i);
  h.load(0, progs::bubble_sort(0x1000, n));
  Rv32Core core;
  h.run(core, 1000000);
  ASSERT_TRUE(core.halted());
  for (unsigned i = 0; i < n; ++i) {
    EXPECT_EQ(h.read(0x1000 + 4 * i), i + 1) << i;
  }
}

TEST(Programs, BubbleSortHandlesRandomAndEdgeSizes) {
  for (const unsigned n : {1u, 2u, 7u}) {
    Harness h;
    std::mt19937 rng(n);
    std::vector<std::uint32_t> ref;
    for (unsigned i = 0; i < n; ++i) {
      const std::uint32_t v = rng() % 1000;
      ref.push_back(v);
      h.write(0x1000 + 4 * i, v);
    }
    std::sort(ref.begin(), ref.end());
    h.load(0, progs::bubble_sort(0x1000, n));
    Rv32Core core;
    h.run(core, 1000000);
    ASSERT_TRUE(core.halted()) << "n=" << n;
    for (unsigned i = 0; i < n; ++i) {
      EXPECT_EQ(h.read(0x1000 + 4 * i), ref[i]) << "n=" << n << " i=" << i;
    }
  }
}

TEST(Programs, FillRandomIsDeterministic) {
  Harness a, b;
  a.load(0, progs::fill_random(0x1000, 32, 0x1234));
  b.load(0, progs::fill_random(0x1000, 32, 0x1234));
  Rv32Core ca, cb;
  a.run(ca);
  b.run(cb);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(a.read(0x1000 + 4 * i), b.read(0x1000 + 4 * i));
  }
  EXPECT_NE(a.read(0x1000), a.read(0x1004));  // actually pseudo-random
}

}  // namespace
}  // namespace ahbp::cpu
