// ahbpower_cli -- run a configurable AHB power analysis from the shell.
//
//   ahbpower_cli [options]
//     --cycles N        bus cycles to simulate        (default 5000)
//     --masters N       traffic masters (1..8)        (default 2)
//     --slaves N        memory slaves (1..8)          (default 3)
//     --waits N         wait states per slave         (default 0)
//     --policy P        fixed | rr                    (default fixed)
//     --seed N          base RNG seed                 (default 1)
//     --window N        power window in bus cycles    (default off;
//                       1000 when --telemetry is given without it)
//     --telemetry DIR   write windowed power series (CSV + JSON), a
//                       Chrome trace_event file and a metrics snapshot
//                       into DIR (campaign.json in --sweep mode)
//     --txn-trace       also reconstruct per-transaction spans with
//                       attributed energy: txns.csv, txns.json and
//                       txn_trace.json in DIR (requires --telemetry)
//     --table           print the instruction table
//     --breakdown       print the sub-block breakdown
//     --attribution     print per-master energy attribution
//     --activity        print the switching-activity summary
//     --csv FILE        write the power trace as CSV (needs --window)
//     --trace-out FILE  record the transaction trace to FILE
//     --quiet           only the one-line summary
//     --sweep           campaign mode: sweep policy x waits on a
//                       multi-core pool, print one row per config
//     --jobs N          worker threads for --sweep (0 = all cores)
//     --faults SEED     deterministic fault injection on every slave
//                       (2% RETRY, 0.5% ERROR, 5% wait-state jitter per
//                       transfer, scheduled by SEED); adds ahb.fault.*
//                       counters to --telemetry metrics
//     --run-budget S    wall-clock budget per run in seconds; a run
//                       exceeding it is aborted (status timed_out in
//                       --sweep, exit code 3 otherwise)
//     --isolation M     thread | process: where --sweep runs execute.
//                       process forks one worker per run, so a SIGSEGV
//                       in one config becomes a "crashed" row instead
//                       of killing the sweep
//     --journal DIR     write-ahead journal for --sweep: every finished
//                       run is durably appended to DIR/campaign.journal
//                       the moment it completes
//     --resume          skip runs already present in the --journal
//                       before executing; the final report is
//                       byte-identical to an uninterrupted sweep
//     --status-port N   serve live campaign observability over HTTP on
//                       127.0.0.1:N while --sweep runs: GET /status
//                       (JSON snapshot), /metrics (Prometheus text),
//                       /events?after=N (event-log tail). 0 binds an
//                       ephemeral port; the bound port is printed as
//                       "status server listening on 127.0.0.1:<port>"
//     --progress        single-line live progress display on stderr
//                       during --sweep (refreshed at most 4x/second;
//                       suppressed when stderr is not a TTY)
//     --stall-after S   heartbeat age in seconds past which an
//                       in-flight process-isolation worker is flagged
//                       stalled (default 5)
//
// With --telemetry DIR, --sweep also persists the event stream to
// DIR/events.jsonl (schema ahbpower.events.v1, one event per line).
//
// Exit codes:
//   0    success
//   2    bad usage / unwritable output / --resume against a corrupt
//        journal or one written with different campaign parameters
//   3    at least one run degraded (failed / timed out / crashed), a
//        single run exceeded --run-budget, or the write-ahead journal
//        could not be written (the report is still emitted)
//   4    --status-port could not be bound (already in use, privileged
//        port); nothing was run
//   130  interrupted by SIGINT (first signal drains + journals
//        in-flight runs and still emits the degraded report)
//   143  terminated by SIGTERM (same drain semantics)

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "ahb/ahb.hpp"
#include "campaign/campaign.hpp"
#include "campaign/journal.hpp"
#include "campaign/progress.hpp"
#include "campaign/report.hpp"
#include "fault/injector.hpp"
#include "power/power.hpp"
#include "sim/sim.hpp"
#include "telemetry/atomic_file.hpp"
#include "telemetry/events.hpp"
#include "telemetry/status_server.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using namespace ahbp;

constexpr std::int64_t kClockNs = 10;  // 100 MHz

struct Options {
  std::uint64_t cycles = 5000;
  unsigned masters = 2;
  unsigned slaves = 3;
  unsigned waits = 0;
  ahb::ArbitrationPolicy policy = ahb::ArbitrationPolicy::kFixedPriority;
  std::uint64_t seed = 1;
  std::uint64_t window_cycles = 0;
  bool table = false;
  bool breakdown = false;
  bool attribution = false;
  bool activity = false;
  bool quiet = false;
  bool sweep = false;
  bool txn_trace = false;
  bool faults = false;
  std::uint64_t fault_seed = 1;
  double run_budget_s = 0.0;
  unsigned jobs = 0;
  campaign::Isolation isolation =
      campaign::Isolation::kThread;
  bool resume = false;
  long status_port = -1;  ///< -1 = off; 0 = ephemeral
  bool progress = false;
  double stall_after_s = 5.0;
  std::string journal_dir;
  std::string csv;
  std::string trace_out;
  std::string telemetry_dir;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--cycles N] [--masters N] [--slaves N] [--waits N]\n"
               "          [--policy fixed|rr] [--seed N] [--window CYCLES]\n"
               "          [--telemetry DIR] [--txn-trace]\n"
               "          [--table] [--breakdown] [--attribution] [--activity]\n"
               "          [--csv FILE] [--trace-out FILE] [--quiet]\n"
               "          [--sweep] [--jobs N] [--faults SEED] [--run-budget S]\n"
               "          [--isolation thread|process] [--journal DIR]"
               " [--resume]\n"
               "          [--status-port N] [--progress] [--stall-after S]\n",
               argv0);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--cycles") {
      o.cycles = std::strtoull(need_value(i), nullptr, 0);
    } else if (a == "--masters") {
      o.masters = static_cast<unsigned>(std::strtoul(need_value(i), nullptr, 0));
    } else if (a == "--slaves") {
      o.slaves = static_cast<unsigned>(std::strtoul(need_value(i), nullptr, 0));
    } else if (a == "--waits") {
      o.waits = static_cast<unsigned>(std::strtoul(need_value(i), nullptr, 0));
    } else if (a == "--policy") {
      const std::string p = need_value(i);
      if (p == "fixed") {
        o.policy = ahb::ArbitrationPolicy::kFixedPriority;
      } else if (p == "rr") {
        o.policy = ahb::ArbitrationPolicy::kRoundRobin;
      } else {
        usage(argv[0]);
      }
    } else if (a == "--seed") {
      o.seed = std::strtoull(need_value(i), nullptr, 0);
    } else if (a == "--window") {
      o.window_cycles = std::strtoull(need_value(i), nullptr, 0);
    } else if (a == "--telemetry") {
      o.telemetry_dir = need_value(i);
    } else if (a == "--txn-trace") {
      o.txn_trace = true;
    } else if (a == "--table") {
      o.table = true;
    } else if (a == "--breakdown") {
      o.breakdown = true;
    } else if (a == "--attribution") {
      o.attribution = true;
    } else if (a == "--activity") {
      o.activity = true;
    } else if (a == "--csv") {
      o.csv = need_value(i);
    } else if (a == "--trace-out") {
      o.trace_out = need_value(i);
    } else if (a == "--quiet") {
      o.quiet = true;
    } else if (a == "--sweep") {
      o.sweep = true;
    } else if (a == "--jobs") {
      o.jobs = static_cast<unsigned>(std::strtoul(need_value(i), nullptr, 0));
    } else if (a == "--faults") {
      o.faults = true;
      o.fault_seed = std::strtoull(need_value(i), nullptr, 0);
    } else if (a == "--run-budget") {
      o.run_budget_s = std::strtod(need_value(i), nullptr);
      if (o.run_budget_s <= 0.0) usage(argv[0]);
    } else if (a == "--isolation") {
      const std::string m = need_value(i);
      if (m == "thread") {
        o.isolation = campaign::Isolation::kThread;
      } else if (m == "process") {
        o.isolation = campaign::Isolation::kProcess;
      } else {
        usage(argv[0]);
      }
    } else if (a == "--journal") {
      o.journal_dir = need_value(i);
    } else if (a == "--resume") {
      o.resume = true;
    } else if (a == "--status-port") {
      o.status_port = std::strtol(need_value(i), nullptr, 0);
      if (o.status_port < 0 || o.status_port > 65535) usage(argv[0]);
    } else if (a == "--progress") {
      o.progress = true;
    } else if (a == "--stall-after") {
      o.stall_after_s = std::strtod(need_value(i), nullptr);
      if (o.stall_after_s <= 0.0) usage(argv[0]);
    } else {
      usage(argv[0]);
    }
  }
  if (o.masters < 1 || o.masters > 8 || o.slaves < 1 || o.slaves > 8) {
    usage(argv[0]);
  }
  if (!o.journal_dir.empty() && !o.sweep) {
    std::fputs("--journal requires --sweep\n", stderr);
    std::exit(2);
  }
  if (o.resume && o.journal_dir.empty()) {
    std::fputs("--resume requires --journal DIR\n", stderr);
    std::exit(2);
  }
  if (o.status_port >= 0 && !o.sweep) {
    std::fputs("--status-port requires --sweep\n", stderr);
    std::exit(2);
  }
  if (o.progress && !o.sweep) {
    std::fputs("--progress requires --sweep\n", stderr);
    std::exit(2);
  }
  if (!o.csv.empty() && o.window_cycles == 0) {
    std::fputs("--csv requires --window\n", stderr);
    std::exit(2);
  }
  if (o.txn_trace && o.telemetry_dir.empty() && !o.sweep) {
    std::fputs("--txn-trace requires --telemetry DIR\n", stderr);
    std::exit(2);
  }
  // Telemetry needs a window; default to the 1000-cycle granularity of
  // the acceptance workflow when none was given.
  if (!o.telemetry_dir.empty() && o.window_cycles == 0) o.window_cycles = 1000;
  return o;
}

/// `dir/name`, with the directory created on first use. All artifacts
/// are then committed through AtomicFile so an interrupt mid-write can
/// never leave a truncated file behind.
std::filesystem::path output_path(const std::string& dir, const char* name) {
  std::filesystem::create_directories(dir);
  return std::filesystem::path(dir) / name;
}

/// Runs one atomic file emission; I/O failure is a usage-class error.
template <typename Fn>
void emit_or_die(Fn&& fn) {
  try {
    fn();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    std::exit(2);
  }
}

// First SIGINT/SIGTERM requests a graceful stop: the campaign cancel
// flag (or the kernel's cooperative cancel in single-run mode) drains
// in-flight runs, journals them and still emits the degraded report.
// A second signal gives up and force-exits with 128+sig.
std::atomic<bool> g_interrupted{false};
std::atomic<int> g_signal{0};

extern "C" void on_signal(int sig) {
  if (g_interrupted.exchange(true)) _exit(128 + sig);
  g_signal.store(sig);
}

void install_signal_handlers() {
  struct sigaction sa{};
  sa.sa_handler = on_signal;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

/// The --faults rate card: uniform seed-driven RETRY / ERROR /
/// wait-state jitter on every slave. SPLIT stays off here because the
/// pipelined TrafficMaster does not rework split transfers (the
/// serialized ScriptedMaster does; see tests/ahb/test_faults.cpp).
fault::SlaveFaultConfig cli_fault_rates() {
  fault::SlaveFaultConfig rates;
  rates.retry_rate = 0.02;
  rates.error_rate = 0.005;
  rates.jitter_rate = 0.05;
  rates.max_extra_waits = 3;
  return rates;
}

/// The injector for one run, or null when --faults is off. The caller
/// keeps it alive for the whole simulation: slave hooks point into it.
std::unique_ptr<fault::FaultInjector> make_injector(
    const Options& o, telemetry::MetricsRegistry* metrics) {
  if (!o.faults) return nullptr;
  return std::make_unique<fault::FaultInjector>(
      fault::FaultPlan::uniform(o.fault_seed, cli_fault_rates(), o.slaves),
      metrics);
}

/// One --sweep configuration as a campaign spec: the CLI topology with
/// a given arbitration policy and wait-state count, run for o.cycles.
campaign::RunSpec sweep_spec(const Options& o, ahb::ArbitrationPolicy policy,
                             unsigned waits) {
  Options run = o;
  run.policy = policy;
  run.waits = waits;
  const std::string name =
      std::string(policy == ahb::ArbitrationPolicy::kFixedPriority ? "fixed"
                                                                   : "rr") +
      "/w" + std::to_string(waits);
  return {name, [run] {
            sim::Kernel kernel;
            sim::Module top(nullptr, "top");
            sim::Clock clk(&top, "clk", sim::SimTime::ns(kClockNs), 0.5,
                           sim::SimTime::ns(kClockNs));
            ahb::AhbBus bus(&top, "ahb", clk,
                            ahb::AhbBus::Config{.policy = run.policy});
            ahb::DefaultMaster dm(&top, "default_master", bus);
            std::vector<std::unique_ptr<ahb::TrafficMaster>> masters;
            for (unsigned m = 0; m < run.masters; ++m) {
              masters.push_back(std::make_unique<ahb::TrafficMaster>(
                  &top, "m" + std::to_string(m + 1), bus,
                  ahb::TrafficMaster::Config{
                      .addr_base = 0x1000u * (m % run.slaves),
                      .addr_range = 0x1000,
                      .seed = run.seed + 97 * m,
                  }));
            }
            auto injector = make_injector(run, nullptr);
            std::vector<std::unique_ptr<ahb::MemorySlave>> slaves;
            for (unsigned s = 0; s < run.slaves; ++s) {
              slaves.push_back(std::make_unique<ahb::MemorySlave>(
                  &top, "s" + std::to_string(s + 1), bus,
                  ahb::MemorySlave::Config{
                      .base = 0x1000u * s,
                      .size = 0x1000,
                      .wait_states = run.waits,
                      .fault_hook = injector ? injector->hook(s)
                                             : ahb::FaultHook{}}));
            }
            bus.finalize();
            ahb::BusMonitor mon(&top, "monitor", bus,
                                ahb::BusMonitor::Config{.fatal = false});
            power::AhbPowerEstimator est(
                &top, "power", bus,
                power::AhbPowerEstimator::Config{.txn_trace = true});
            kernel.run(sim::SimTime::ns(kClockNs) *
                       static_cast<std::int64_t>(run.cycles));
            est.flush_telemetry();

            campaign::PowerReport r;
            r.total_energy = est.total_energy();
            r.blocks = est.block_totals();
            r.cycles = est.fsm().cycles();
            r.transfers = mon.stats().transfers;
            r.metrics["data_share"] = power::data_transfer_share(est.fsm());
            r.metrics["arb_share"] = power::arbitration_share(est.fsm());
            const power::TransactionTracer& txn = *est.txn_tracer();
            r.bus_energy_j = txn.attribution().bus_energy();
            for (unsigned m = 0; m <= run.masters; ++m) {
              r.attribution.push_back(
                  {txn.attribution().master_energy()[m],
                   txn.master_txns()[m]});
            }
            return r;
          }};
}

/// Fingerprint of everything that determines a sweep's results. A
/// journal records it so --resume refuses to mix outcomes produced by
/// a differently parameterized campaign into the new report. Thread
/// count and isolation mode are deliberately excluded: results are
/// documented to be bit-identical across both.
std::uint64_t sweep_fingerprint(const Options& o,
                                const std::vector<campaign::RunSpec>& specs) {
  std::string canon = "cycles=" + std::to_string(o.cycles) +
                      ";masters=" + std::to_string(o.masters) +
                      ";slaves=" + std::to_string(o.slaves) +
                      ";seed=" + std::to_string(o.seed) + ";faults=" +
                      (o.faults ? std::to_string(o.fault_seed)
                                : std::string("off")) +
                      ";run_budget=" + std::to_string(o.run_budget_s) +
                      ";specs=";
  for (const campaign::RunSpec& s : specs) {
    canon += s.name;
    canon += ',';
  }
  return campaign::fnv1a64(canon);
}

int run_sweep(const Options& o) {
  std::vector<campaign::RunSpec> specs;
  for (const auto policy : {ahb::ArbitrationPolicy::kFixedPriority,
                            ahb::ArbitrationPolicy::kRoundRobin}) {
    for (const unsigned waits : {0u, 1u, 3u}) {
      specs.push_back(sweep_spec(o, policy, waits));
    }
  }
  campaign::Campaign::Config pool_cfg;
  pool_cfg.threads = o.jobs;
  pool_cfg.isolation = o.isolation;
  pool_cfg.cancel = &g_interrupted;
  if (o.run_budget_s > 0.0) {
    pool_cfg.run_budget.max_wall_seconds = o.run_budget_s;
  }
  const campaign::Campaign pool(pool_cfg);

  // Write-ahead journal: every finished run is durably appended before
  // the campaign moves on, so a crash or kill mid-sweep loses at most
  // the runs still in flight. --resume replays the journal instead of
  // re-executing what already completed.
  std::unique_ptr<campaign::JournalWriter> journal;
  campaign::JournalLoadResult restored;
  const std::uint64_t fingerprint = sweep_fingerprint(o, specs);
  if (!o.journal_dir.empty()) {
    std::filesystem::create_directories(o.journal_dir);
    const std::filesystem::path jpath =
        std::filesystem::path(o.journal_dir) / "campaign.journal";
    if (o.resume) {
      restored = campaign::load_journal(jpath);
      if (!restored.ok()) {
        std::fprintf(stderr, "cannot resume: %s\n", restored.error.c_str());
        return 2;
      }
      if (std::filesystem::exists(jpath) &&
          restored.config_fingerprint != fingerprint) {
        std::fprintf(stderr,
                     "cannot resume: %s was journaled with different campaign "
                     "parameters (cycles/topology/seed/faults/run-budget); "
                     "rerun without --resume to start over\n",
                     jpath.string().c_str());
        return 2;
      }
      if (!restored.outcomes.empty()) {
        std::printf("resuming: %zu run(s) restored from %s%s\n",
                    restored.outcomes.size(), jpath.string().c_str(),
                    restored.torn_tail ? " (torn tail discarded)" : "");
      }
    } else {
      // A fresh sweep must not inherit a previous campaign's entries.
      std::error_code ec;
      std::filesystem::remove(jpath, ec);
    }
    try {
      // Also truncates any torn tail the interrupted campaign left, so
      // new appends never land after a partial frame.
      journal = std::make_unique<campaign::JournalWriter>(jpath, fingerprint);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
  }
  // --- live observability ---------------------------------------------
  // Event log (persisted to DIR/events.jsonl when --telemetry names a
  // directory), progress tracker and the optional HTTP status endpoint.
  // Everything is wired before the first run starts so /status answers
  // for the whole sweep.
  telemetry::EventLog::Config ev_cfg;
  ev_cfg.config_fingerprint = fingerprint;
  if (!o.telemetry_dir.empty()) {
    std::filesystem::create_directories(o.telemetry_dir);
    ev_cfg.file = std::filesystem::path(o.telemetry_dir) / "events.jsonl";
  }
  telemetry::EventLog events(ev_cfg);
  campaign::ProgressTracker tracker(campaign::ProgressTracker::Config{
      .stall_after_seconds = o.stall_after_s});
  tracker.set_fingerprint(fingerprint);
  tracker.attach(events);

  // Campaign-level metrics behind GET /metrics: lifecycle counters fed
  // by an event listener, plus snapshot gauges refreshed per scrape.
  // Handles are registered here, before any concurrent emission -- the
  // registry's registration contract.
  telemetry::MetricsRegistry metrics;
  telemetry::Counter& m_events = metrics.counter("campaign.events");
  telemetry::Counter& m_ok = metrics.counter("campaign.runs_ok");
  telemetry::Counter& m_failed = metrics.counter("campaign.runs_failed");
  telemetry::Counter& m_crashed = metrics.counter("campaign.runs_crashed");
  telemetry::Counter& m_timed_out = metrics.counter("campaign.runs_timed_out");
  telemetry::Counter& m_cancelled = metrics.counter("campaign.runs_cancelled");
  telemetry::Counter& m_retries = metrics.counter("campaign.retries");
  telemetry::Counter& m_journal = metrics.counter("campaign.journal_appends");
  telemetry::Counter& m_watchdog = metrics.counter("campaign.watchdog_trips");
  telemetry::Counter& m_stalls = metrics.counter("campaign.worker_stalls");
  telemetry::Gauge& g_done = metrics.gauge("campaign.done");
  telemetry::Gauge& g_in_flight = metrics.gauge("campaign.in_flight");
  telemetry::Gauge& g_rps = metrics.gauge("campaign.runs_per_sec");
  telemetry::Gauge& g_eta = metrics.gauge("campaign.eta_seconds");
  events.add_listener([&](const telemetry::Event& ev) {
    m_events.add(1);
    if (ev.type == "run_finish") {
      const std::string_view st = ev.str("status");
      if (st == "ok") m_ok.add(1);
      else if (st == "failed") m_failed.add(1);
      else if (st == "crashed") m_crashed.add(1);
      else if (st == "timed_out") m_timed_out.add(1);
      else if (st == "cancelled") m_cancelled.add(1);
    } else if (ev.type == "run_retry") {
      m_retries.add(1);
    } else if (ev.type == "journal_append") {
      m_journal.add(1);
    } else if (ev.type == "watchdog_trip") {
      m_watchdog.add(1);
    } else if (ev.type == "worker_stalled") {
      m_stalls.add(1);
    }
  });

  std::unique_ptr<telemetry::StatusServer> server;
  if (o.status_port >= 0) {
    telemetry::StatusServer::Config scfg;
    scfg.port = static_cast<std::uint16_t>(o.status_port);
    scfg.status_json = [&tracker] { return tracker.status_json(); };
    scfg.metrics_text = [&] {
      const campaign::ProgressTracker::Snapshot s = tracker.snapshot();
      g_done.set(static_cast<double>(s.done));
      g_in_flight.set(static_cast<double>(s.in_flight));
      g_rps.set(s.runs_per_sec);
      g_eta.set(s.eta_seconds);
      std::ostringstream out;
      telemetry::write_prometheus_text(out, metrics);
      return out.str();
    };
    scfg.events_jsonl = [&events](std::uint64_t after) {
      return events.render_since(after);
    };
    try {
      server = std::make_unique<telemetry::StatusServer>(std::move(scfg));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 4;
    }
    // The exact line the ctest smoke probe parses; flushed explicitly
    // because stdout is fully buffered when piped.
    std::printf("status server listening on 127.0.0.1:%u\n",
                static_cast<unsigned>(server->port()));
    std::fflush(stdout);
  }

  campaign::Campaign::RunOptions ropts;
  ropts.journal = journal.get();
  if (o.resume) ropts.resume = &restored.outcomes;
  ropts.events = &events;
  ropts.progress = &tracker;
  // Deferred journal-append failures (disk full, EIO) surface here
  // instead of as an exception: the completed runs are still reported.
  std::string journal_error;
  ropts.journal_error = &journal_error;
  std::vector<campaign::RunOutcome> outcomes;
  const bool show_progress = o.progress && ::isatty(2) != 0;
  {
    // --progress: one stderr status line, redrawn in place at <= 4 Hz.
    // The jthread's stop+join on scope exit also covers the error
    // return below.
    std::jthread progress_line;
    if (show_progress) {
      progress_line = std::jthread([&tracker](const std::stop_token& st) {
        while (!st.stop_requested()) {
          const campaign::ProgressTracker::Snapshot s = tracker.snapshot();
          std::string eta = "--";
          if (s.eta_seconds >= 0.0) {
            char buf[32];
            std::snprintf(buf, sizeof buf, "%.0fs", s.eta_seconds);
            eta = buf;
          }
          std::fprintf(stderr,
                       "\r[sweep] %llu/%llu done | %llu in flight | "
                       "%.2f runs/s | eta %s | %llu stalled   ",
                       static_cast<unsigned long long>(s.done + s.restored),
                       static_cast<unsigned long long>(s.total),
                       static_cast<unsigned long long>(s.in_flight),
                       s.runs_per_sec, eta.c_str(),
                       static_cast<unsigned long long>(s.stalled_workers));
          std::fflush(stderr);
          // 250 ms refresh, sliced so stop is prompt.
          for (int i = 0; i < 50 && !st.stop_requested(); ++i) {
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
          }
        }
      });
    }
    try {
      outcomes = pool.run(specs, ropts);
    } catch (const std::exception& e) {
      // Campaign infrastructure failure (fork/pipe exhaustion): nothing
      // to report, but exit deliberately rather than via std::terminate.
      std::fprintf(stderr, "sweep failed: %s\n", e.what());
      return 2;
    }
  }
  if (show_progress) std::fputc('\n', stderr);
  if (g_interrupted.load()) {
    // The drain already happened inside pool.run; record that the
    // timeline ends on a signal, not a natural campaign_finish.
    events.emit("sigint_drain",
                {telemetry::field_u64(
                    "signal", static_cast<std::uint64_t>(g_signal.load()))});
  }

  std::printf("ahbpower sweep: %zu configs, %llu cycles each, %u threads\n",
              specs.size(), static_cast<unsigned long long>(o.cycles),
              pool.threads());
  std::printf("%-10s | %10s %10s %14s %10s %9s\n", "config", "cycles",
              "transfers", "total energy", "data %", "arb %");
  int rc = 0;
  for (const auto& out : outcomes) {
    if (!out.ok) {
      std::printf("%-10s | %s: %s\n", out.name.c_str(),
                  campaign::to_string(out.status), out.error.c_str());
      rc = 3;
      continue;
    }
    const campaign::PowerReport& r = out.report;
    std::printf("%-10s | %10llu %10llu %14s %9.1f%% %8.1f%%\n", out.name.c_str(),
                static_cast<unsigned long long>(r.cycles),
                static_cast<unsigned long long>(r.transfers),
                power::format_energy(r.total_energy).c_str(),
                100.0 * r.metrics.at("data_share"),
                100.0 * r.metrics.at("arb_share"));
  }
  if (!journal_error.empty()) {
    std::fprintf(stderr,
                 "warning: write-ahead journaling failed (%s); results above "
                 "are complete but the journal is not resumable\n",
                 journal_error.c_str());
    rc = 3;
  }
  if (!o.telemetry_dir.empty()) {
    emit_or_die([&] {
      campaign::write_campaign_json_file(
          output_path(o.telemetry_dir, "campaign.json"), outcomes,
          campaign::CampaignReportMeta{.name = "ahbpower_cli --sweep",
                                       .cycles = o.cycles,
                                       .threads = pool.threads()});
    });
    std::printf("campaign report written to %s/campaign.json\n",
                o.telemetry_dir.c_str());
  }
  if (g_interrupted.load()) {
    std::fprintf(stderr, "sweep interrupted by signal %d; partial results "
                 "journaled and reported\n", g_signal.load());
    return 128 + g_signal.load();
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);
  install_signal_handlers();
  if (o.sweep) return run_sweep(o);

  telemetry::MetricsRegistry metrics;
  const bool telemetry_on = !o.telemetry_dir.empty();
  sim::Kernel kernel;
  kernel.set_cancel_flag(&g_interrupted);
  if (o.run_budget_s > 0.0) {
    kernel.set_budget(sim::RunBudget{.max_wall_seconds = o.run_budget_s});
  }
  sim::Module top(nullptr, "top");
  sim::Clock clk(&top, "clk", sim::SimTime::ns(kClockNs), 0.5,
                 sim::SimTime::ns(kClockNs));
  ahb::AhbBus bus(&top, "ahb", clk, ahb::AhbBus::Config{.policy = o.policy});

  ahb::DefaultMaster dm(&top, "default_master", bus);
  std::vector<std::unique_ptr<ahb::TrafficMaster>> masters;
  for (unsigned m = 0; m < o.masters; ++m) {
    masters.push_back(std::make_unique<ahb::TrafficMaster>(
        &top, "m" + std::to_string(m + 1), bus,
        ahb::TrafficMaster::Config{
            .addr_base = 0x1000u * (m % o.slaves),
            .addr_range = 0x1000,
            .seed = o.seed + 97 * m,
        }));
  }
  auto injector = make_injector(o, telemetry_on ? &metrics : nullptr);
  std::vector<std::unique_ptr<ahb::MemorySlave>> slaves;
  for (unsigned s = 0; s < o.slaves; ++s) {
    slaves.push_back(std::make_unique<ahb::MemorySlave>(
        &top, "s" + std::to_string(s + 1), bus,
        ahb::MemorySlave::Config{
            .base = 0x1000u * s,
            .size = 0x1000,
            .wait_states = o.waits,
            .fault_hook = injector ? injector->hook(s) : ahb::FaultHook{}}));
  }
  bus.finalize();

  ahb::BusMonitor::Config mon_cfg{.fatal = false,
                                  .metrics = telemetry_on ? &metrics : nullptr};
  ahb::BusMonitor mon(&top, "monitor", bus, mon_cfg);
  power::AhbPowerEstimator est(
      &top, "power", bus,
      power::AhbPowerEstimator::Config{
          .trace_window = o.window_cycles > 0 && !o.csv.empty()
              ? sim::SimTime::ns(kClockNs) *
                    static_cast<std::int64_t>(o.window_cycles)
              : sim::SimTime::zero(),
          .telemetry_window_cycles = telemetry_on ? o.window_cycles : 0,
          .txn_trace = o.txn_trace,
          .metrics = telemetry_on ? &metrics : nullptr});
  std::unique_ptr<ahb::TraceRecorder> recorder;
  if (!o.trace_out.empty()) {
    recorder = std::make_unique<ahb::TraceRecorder>(&top, "recorder", bus);
  }

  try {
    kernel.run(sim::SimTime::ns(kClockNs) *
               static_cast<std::int64_t>(o.cycles));
  } catch (const sim::BudgetExceededError& e) {
    std::fprintf(stderr, "run aborted: %s\n", e.what());
    return 3;
  } catch (const sim::RunCancelledError&) {
    std::fprintf(stderr, "run interrupted by signal %d\n", g_signal.load());
    return 128 + g_signal.load();
  }
  est.flush_telemetry();

  const double secs = kernel.now().to_seconds();
  std::printf("ahbpower: %llu cycles @ 100 MHz | %llu transfers | %s | avg %s | "
              "data %.1f%% arb %.1f%% | %zu violations\n",
              static_cast<unsigned long long>(est.fsm().cycles()),
              static_cast<unsigned long long>(mon.stats().transfers),
              power::format_energy(est.total_energy()).c_str(),
              power::format_power(est.total_energy() / secs).c_str(),
              100.0 * power::data_transfer_share(est.fsm()),
              100.0 * power::arbitration_share(est.fsm()),
              mon.violations().size());
  if (injector) {
    const fault::FaultInjector::Stats& fs = injector->stats();
    std::printf("faults (seed %llu): %llu transfers hit | %llu retries | "
                "%llu errors | %llu jitter cycles\n",
                static_cast<unsigned long long>(o.fault_seed),
                static_cast<unsigned long long>(fs.retries + fs.errors +
                                                fs.splits + fs.jitter_hits),
                static_cast<unsigned long long>(fs.retries),
                static_cast<unsigned long long>(fs.errors),
                static_cast<unsigned long long>(fs.jitter_cycles));
  }

  if (telemetry_on) {
    const telemetry::ExportMeta meta{.tick_ns = static_cast<double>(kClockNs),
                                     .process_name = "ahbpower"};
    emit_or_die([&] {
      telemetry::write_window_csv_file(
          output_path(o.telemetry_dir, "power_windows.csv"), *est.windows(),
          meta);
      telemetry::write_window_json_file(
          output_path(o.telemetry_dir, "power_windows.json"), *est.windows(),
          meta);
      telemetry::write_chrome_trace_file(
          output_path(o.telemetry_dir, "trace.json"), *est.trace_events(),
          est.windows(), meta);
    });
    if (o.txn_trace) {
      const power::TransactionTracer& txn = *est.txn_tracer();
      // Per-master span tracks named after the module hierarchy.
      telemetry::ExportMeta txn_meta = meta;
      txn_meta.threads.emplace_back(telemetry::txn_track_tid(0),
                                    "default_master");
      for (unsigned m = 0; m < o.masters; ++m) {
        txn_meta.threads.emplace_back(telemetry::txn_track_tid(m + 1),
                                      "m" + std::to_string(m + 1));
      }
      emit_or_die([&] {
        telemetry::write_txn_csv_file(output_path(o.telemetry_dir, "txns.csv"),
                                      txn.log());
        telemetry::write_txn_json_file(
            output_path(o.telemetry_dir, "txns.json"), txn.log(),
            txn.summary(est.total_energy()), meta);
        telemetry::write_chrome_trace_file(
            output_path(o.telemetry_dir, "txn_trace.json"), txn.spans(),
            nullptr, txn_meta);
      });
    }
    {
      // Run-level and scheduler-level context beside the power metrics.
      metrics.counter("run.transfers").add(mon.stats().transfers);
      metrics.counter("run.protocol_violations").add(mon.violations().size());
      metrics.counter("sim.deltas").add(kernel.delta_count());
      metrics.counter("sim.processes_executed")
          .add(kernel.stats().processes_executed);
      metrics.counter("sim.timed_notifications")
          .add(kernel.stats().timed_notifications);
      metrics.counter("sim.time_advances").add(kernel.stats().time_advances);
      metrics.gauge("run.simulated_seconds").set(secs);
      emit_or_die([&] {
        telemetry::write_metrics_json_file(
            output_path(o.telemetry_dir, "metrics.json"), metrics);
      });
    }
    std::printf(
        "telemetry written to %s (power_windows.csv, power_windows.json, "
        "trace.json, metrics.json%s; window = %llu cycles)\n",
        o.telemetry_dir.c_str(),
        o.txn_trace ? ", txns.csv, txns.json, txn_trace.json" : "",
        static_cast<unsigned long long>(o.window_cycles));
  }
  if (o.quiet) return 0;

  if (o.table) {
    std::putchar('\n');
    std::fputs(power::format_instruction_table(est.fsm()).c_str(), stdout);
  }
  if (o.breakdown) {
    std::putchar('\n');
    std::fputs(power::format_block_breakdown(est.block_totals()).c_str(), stdout);
  }
  if (o.attribution) {
    std::vector<std::string> names{"default_master"};
    for (unsigned m = 0; m < o.masters; ++m) {
      names.push_back("m" + std::to_string(m + 1));
    }
    std::putchar('\n');
    std::fputs(power::format_master_attribution(est.fsm(), names).c_str(), stdout);
  }
  if (o.activity) {
    std::putchar('\n');
    std::fputs(power::format_activity_report(est.fsm().activity()).c_str(), stdout);
  }
  if (!o.csv.empty()) {
    emit_or_die([&] {
      telemetry::AtomicFile file(o.csv);
      power::write_trace_csv(file.stream(), *est.trace());
      file.commit();
    });
    std::printf("\npower trace written to %s\n", o.csv.c_str());
  }
  if (recorder) {
    emit_or_die([&] {
      telemetry::AtomicFile file(o.trace_out);
      recorder->trace().save(file.stream());
      file.commit();
    });
    std::printf("transaction trace (%zu transfers) written to %s\n",
                recorder->trace().size(), o.trace_out.c_str());
  }
  return 0;
}
