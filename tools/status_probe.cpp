// status_probe -- ctest driver for the live observability surface.
//
//   status_probe smoke <ahbpower_cli> <out-dir>
//   status_probe emit-hostile <out-dir>
//
// smoke: launches a process-isolated --sweep with --status-port 0,
// parses the bound port from the CLI's stdout, then exercises the
// whole live surface through the in-tree HTTP client (no curl):
//   - polls GET /status until workers are in flight and saves the first
//     live snapshot to <out-dir>/status_snapshot.json (fixture-chained
//     into telemetry_validate);
//   - checks GET /metrics exposes the campaign counters in Prometheus
//     text form and GET /events?after=0 tails the event log;
//   - SIGSTOPs one worker process until its heartbeat age crosses the
//     --stall-after threshold and /status + /events report the stall,
//     then SIGCONTs it and lets the sweep finish;
//   - requires CLI exit 0, then replays <out-dir>/events.jsonl and
//     cross-checks the terminal counts against campaign.json.
//
// emit-hostile: runs a tiny in-process campaign whose spec names and
// error strings are JSON-hostile (quotes, backslashes, control bytes,
// newlines) and emits events.jsonl, campaign.json and a live status
// snapshot through the real library writers. The fixture-chained
// telemetry_validate runs prove every writer escapes instead of
// corrupting the artifact.
//
// Exit 0 on success, 1 on a probe failure (diagnostics on stderr),
// 2 on bad usage.

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "campaign/campaign.hpp"
#include "campaign/progress.hpp"
#include "campaign/report.hpp"
#include "telemetry/events.hpp"
#include "telemetry/status_server.hpp"

#include "mini_json.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using minijson::Parser;
using minijson::Value;

[[noreturn]] void die(const std::string& what) {
  std::fprintf(stderr, "status_probe: %s\n", what.c_str());
  std::exit(1);
}

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) die("cannot read " + path.string());
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void write_file(const std::filesystem::path& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << body;
  if (!out) die("cannot write " + path.string());
}

// --- smoke ------------------------------------------------------------------

constexpr double kStallAfter = 0.4;   // seconds; tuned well above the
                                      // 0.1 s heartbeat interval
constexpr double kDeadline = 120.0;   // overall probe watchdog

Value fetch_status(std::uint16_t port) {
  const ahbp::telemetry::HttpResponse res =
      ahbp::telemetry::http_get(port, "/status");
  if (!res.ok()) {
    die("GET /status failed (HTTP " + std::to_string(res.status) + ")");
  }
  return Parser(res.body).parse();
}

int run_smoke(const char* cli, const char* out_dir) {
  std::filesystem::create_directories(out_dir);
  const std::filesystem::path dir(out_dir);

  // Long enough runs that workers are observably in flight on this
  // machine class, short enough that the whole probe stays smoke-sized.
  const std::string cmd =
      std::string(cli) +
      " --sweep --cycles 150000 --jobs 2 --isolation process" +
      " --journal " + dir.string() + " --telemetry " + dir.string() +
      " --status-port 0 --stall-after " + std::to_string(kStallAfter) +
      " 2>&1";
  FILE* pipe = ::popen(cmd.c_str(), "r");
  if (pipe == nullptr) die("cannot launch " + cmd);

  const Clock::time_point t0 = Clock::now();
  // The CLI prints the bound port before the first run starts and
  // flushes, so this read cannot deadlock against the sweep.
  std::uint16_t port = 0;
  char line[512];
  while (std::fgets(line, sizeof line, pipe) != nullptr) {
    const char* hit = std::strstr(line, "listening on 127.0.0.1:");
    if (hit != nullptr) {
      port = static_cast<std::uint16_t>(
          std::atoi(hit + std::strlen("listening on 127.0.0.1:")));
      break;
    }
  }
  if (port == 0) {
    ::pclose(pipe);
    die("CLI never printed the bound status port");
  }

  // Phase 1: a live snapshot with workers in flight.
  std::string live_snapshot;
  while (live_snapshot.empty()) {
    if (seconds_since(t0) > kDeadline) die("no in-flight worker appeared");
    const ahbp::telemetry::HttpResponse res =
        ahbp::telemetry::http_get(port, "/status");
    if (res.ok()) {
      const Value doc = Parser(res.body).parse();
      const Value* workers = doc.find("workers");
      if (workers != nullptr && !workers->array.empty()) {
        live_snapshot = res.body;
      }
    }
    if (live_snapshot.empty()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  write_file(dir / "status_snapshot.json", live_snapshot);
  std::printf("status_probe: live snapshot captured\n");

  // Phase 2: /metrics and /events answer while the sweep runs.
  {
    const ahbp::telemetry::HttpResponse res =
        ahbp::telemetry::http_get(port, "/metrics");
    if (!res.ok()) die("GET /metrics failed");
    if (res.body.find("campaign_events") == std::string::npos ||
        res.body.find("# TYPE") == std::string::npos) {
      die("GET /metrics is not Prometheus text exposition:\n" + res.body);
    }
  }
  {
    const ahbp::telemetry::HttpResponse res =
        ahbp::telemetry::http_get(port, "/events?after=0");
    if (!res.ok()) die("GET /events failed");
    if (res.body.find("\"type\": \"campaign_start\"") == std::string::npos) {
      die("GET /events?after=0 is missing campaign_start");
    }
  }
  std::printf("status_probe: /metrics and /events answered live\n");

  // Phase 3: freeze one worker until the tracker reports the stall.
  // The target run may finish between the snapshot and the SIGSTOP, so
  // retry with a fresh worker a few times.
  bool stall_seen = false;
  for (int attempt = 0; attempt < 5 && !stall_seen; ++attempt) {
    if (seconds_since(t0) > kDeadline) break;
    const Value doc = fetch_status(port);
    const Value* workers = doc.find("workers");
    if (workers == nullptr || workers->array.empty()) break;  // sweep drained
    const Value* id = workers->array.front().find("id");
    if (id == nullptr) die("/status worker entry has no id");
    const pid_t victim = static_cast<pid_t>(id->number);
    if (::kill(victim, SIGSTOP) != 0) continue;  // already gone; retry
    const Clock::time_point stop_t = Clock::now();
    while (!stall_seen && seconds_since(stop_t) < 10.0) {
      const Value poll = fetch_status(port);
      const Value* stalled = poll.find("stalled_workers");
      if (stalled != nullptr && stalled->number >= 1.0) {
        // The stalled worker's heartbeat age must actually exceed the
        // threshold it was flagged against.
        if (const Value* ws = poll.find("workers")) {
          for (const Value& w : ws->array) {
            const Value* flag = w.find("stalled");
            const Value* age = w.find("heartbeat_age_seconds");
            if (flag != nullptr && flag->boolean && age != nullptr &&
                age->number > kStallAfter) {
              stall_seen = true;
            }
          }
        }
      }
      if (!stall_seen) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
    }
    ::kill(victim, SIGCONT);
  }
  if (!stall_seen) {
    ::pclose(pipe);
    die("SIGSTOPped worker was never reported stalled");
  }
  {
    const ahbp::telemetry::HttpResponse res =
        ahbp::telemetry::http_get(port, "/events?after=0");
    if (res.ok() &&
        res.body.find("\"type\": \"worker_stalled\"") == std::string::npos) {
      die("stall was visible in /status but worker_stalled never hit the log");
    }
  }
  std::printf("status_probe: stall detected and cleared\n");

  // Phase 4: drain the CLI and require a clean exit.
  while (std::fgets(line, sizeof line, pipe) != nullptr) {
  }
  const int raw = ::pclose(pipe);
  if (!WIFEXITED(raw) || WEXITSTATUS(raw) != 0) {
    die("CLI exited abnormally (raw status " + std::to_string(raw) + ")");
  }

  // Phase 5: the event log must replay to campaign.json's counts.
  std::map<std::string, std::size_t> replay;
  {
    const std::string text = read_file(dir / "events.jsonl");
    std::size_t pos = text.find('\n');  // skip the header line
    pos = pos == std::string::npos ? text.size() : pos + 1;
    while (pos < text.size()) {
      std::size_t eol = text.find('\n', pos);
      if (eol == std::string::npos) eol = text.size();
      const std::string l = text.substr(pos, eol - pos);
      pos = eol + 1;
      if (l.empty()) continue;
      const Value ev = Parser(l).parse();
      const Value* type = ev.find("type");
      const Value* status = ev.find("status");
      if (type != nullptr && type->string == "run_finish" &&
          status != nullptr) {
        ++replay[status->string];
      }
    }
  }
  const Value campaign = Parser(read_file(dir / "campaign.json")).parse();
  const Value* runs = campaign.find("runs");
  if (runs == nullptr) die("campaign.json has no runs");
  std::map<std::string, std::size_t> reported;
  for (const Value& run : runs->array) {
    if (const Value* status = run.find("status")) ++reported[status->string];
  }
  for (const char* status : {"ok", "failed", "crashed", "timed_out"}) {
    if (replay[status] != reported[status]) {
      die(std::string("event-log replay mismatch for \"") + status +
          "\": events say " + std::to_string(replay[status]) +
          ", campaign.json says " + std::to_string(reported[status]));
    }
  }
  std::printf("status_probe: event log replays to campaign.json counts "
              "(%zu ok)\n",
              replay["ok"]);
  return 0;
}

// --- emit-hostile -----------------------------------------------------------

int run_emit_hostile(const char* out_dir) {
  namespace campaign = ahbp::campaign;
  namespace telemetry = ahbp::telemetry;
  std::filesystem::create_directories(out_dir);
  const std::filesystem::path dir(out_dir);

  // The adversarial vocabulary: quote + backslash (the spec name the
  // contract calls out), a control byte, a newline and a tab.
  const std::string hostile_ok = "m\"0\\";
  const std::string hostile_fail = std::string("bad\x01name\nwith\ttabs");

  telemetry::EventLog::Config ev_cfg;
  ev_cfg.file = dir / "events.jsonl";
  ev_cfg.config_fingerprint = 0x600dc0ffee;
  telemetry::EventLog events(ev_cfg);
  campaign::ProgressTracker tracker;
  tracker.attach(events);

  std::string live_status;
  std::vector<campaign::RunSpec> specs;
  specs.push_back({hostile_ok, [&tracker, &live_status] {
                     // Captured mid-run: the in-flight worker row now
                     // carries the hostile name through status_json.
                     live_status = tracker.status_json();
                     return campaign::PowerReport{};
                   }});
  specs.push_back({hostile_fail, []() -> campaign::PowerReport {
                     throw std::runtime_error("hostile \"what\"\\with\nnoise");
                   }});

  campaign::Campaign::Config cfg;
  cfg.threads = 1;
  const campaign::Campaign pool(cfg);
  campaign::Campaign::RunOptions opts;
  opts.events = &events;
  opts.progress = &tracker;
  const std::vector<campaign::RunOutcome> outcomes = pool.run(specs, opts);
  if (outcomes.size() != 2 || !outcomes[0].ok || outcomes[1].ok) {
    die("emit-hostile campaign did not produce the expected outcomes");
  }
  if (live_status.empty()) die("live status was never captured");
  write_file(dir / "status_hostile.json", live_status);
  ahbp::campaign::write_campaign_json_file(
      dir / "campaign_hostile.json", outcomes,
      campaign::CampaignReportMeta{.name = "status_probe emit-hostile",
                                   .cycles = 0,
                                   .threads = 1});
  std::printf("status_probe: hostile artifacts written to %s\n", out_dir);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc == 4 && std::strcmp(argv[1], "smoke") == 0) {
      return run_smoke(argv[2], argv[3]);
    }
    if (argc == 3 && std::strcmp(argv[1], "emit-hostile") == 0) {
      return run_emit_hostile(argv[2]);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "status_probe: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr,
               "usage: status_probe smoke <ahbpower_cli> <out-dir>\n"
               "       status_probe emit-hostile <out-dir>\n");
  return 2;
}
