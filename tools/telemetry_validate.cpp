// telemetry_validate -- check a telemetry JSON artifact against the
// checked-in schema catalogue.
//
//   telemetry_validate <schema-catalogue.json> <artifact.json>
//
// The catalogue (tools/telemetry_schema.json) maps schema identifiers
// ("ahbpower.windows.v1", ...) to JSON-Schema-style descriptions; the
// artifact names its own schema via its top-level "schema" field. The
// checker implements the subset of JSON Schema the contract needs --
// "type", "properties", "required", "items" -- over a small hand-rolled
// recursive-descent JSON parser, so validation needs no third-party
// dependency.
//
// For "ahbpower.windows.v1" artifacts it additionally enforces the
// conservation guarantee from docs/OBSERVABILITY.md: per-window energies
// must sum to total_energy_j within 1e-9 relative error. For
// "ahbpower.txns.v1" the analogous guarantee is enforced twice over:
// per-transaction energies + bus_energy_j == total_energy_j, and
// per-master attributed energies + bus_energy_j == total_energy_j. For
// "ahbpower.campaign.v2"/"v3"/"v4" every run carrying an attribution
// block must satisfy attributed master energies + bus_energy_j ==
// total_energy_j. v3/v4 artifacts additionally get their degraded block
// cross-checked: per-run "ok"/"status" consistency, the block's counts
// against the run list, and one degraded entry per non-ok run (v4 adds
// the "crashed" status and count).
//
// Binary artifacts are also understood: a file opening with the
// "ahbpower.journal.v1" header line is checked as a campaign
// write-ahead journal -- every complete [len][fnv1a64][payload] frame
// must pass its checksum and decode structurally; a torn tail (partial
// frame from a crash mid-append) is tolerated and reported.
//
// Exit 0 when valid, 1 on a contract violation, 2 on bad usage / I/O.

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace {

// --- minimal JSON value + parser -------------------------------------------

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::map<std::string, Value> object;

  [[nodiscard]] const Value* find(const std::string& key) const {
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class Parser {
public:
  explicit Parser(std::string text) : text_(std::move(text)) {}

  Value parse() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

private:
  [[noreturn]] void fail(const std::string& what) const {
    std::size_t line = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') ++line;
    }
    throw std::runtime_error("JSON parse error at line " + std::to_string(line) +
                             ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Value parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        Value v;
        v.kind = Value::Kind::kString;
        v.string = parse_string();
        return v;
      }
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value{};
      default: return parse_number();
    }
  }

  static Value make_bool(bool b) {
    Value v;
    v.kind = Value::Kind::kBool;
    v.boolean = b;
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("bad escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            // Contract files are ASCII; keep escapes opaque but consume them.
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            out += '?';
            pos_ += 4;
            break;
          }
          default: fail("bad escape");
        }
      } else {
        out += c;
      }
    }
    fail("unterminated string");
  }

  Value parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            std::strchr("+-.eE", text_[pos_]) != nullptr)) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    Value v;
    v.kind = Value::Kind::kNumber;
    try {
      v.number = std::stod(text_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("bad number");
    }
    return v;
  }

  Value parse_array() {
    expect('[');
    Value v;
    v.kind = Value::Kind::kArray;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  Value parse_object() {
    expect('{');
    Value v;
    v.kind = Value::Kind::kObject;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      const std::string key = parse_string();
      expect(':');
      v.object.emplace(key, parse_value());
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  std::string text_;
  std::size_t pos_ = 0;
};

// --- schema-subset checker -------------------------------------------------

const char* kind_name(Value::Kind k) {
  switch (k) {
    case Value::Kind::kNull: return "null";
    case Value::Kind::kBool: return "boolean";
    case Value::Kind::kNumber: return "number";
    case Value::Kind::kString: return "string";
    case Value::Kind::kArray: return "array";
    case Value::Kind::kObject: return "object";
  }
  return "?";
}

bool kind_matches(const Value& v, const std::string& type) {
  switch (v.kind) {
    case Value::Kind::kNull: return type == "null";
    case Value::Kind::kBool: return type == "boolean";
    case Value::Kind::kNumber:
      return type == "number" ||
             (type == "integer" && v.number == std::floor(v.number));
    case Value::Kind::kString: return type == "string";
    case Value::Kind::kArray: return type == "array";
    case Value::Kind::kObject: return type == "object";
  }
  return false;
}

/// Validates `v` against the supported schema subset, appending one line
/// per violation ("<path>: <reason>") to `errors`.
void validate(const Value& v, const Value& schema, const std::string& path,
              std::vector<std::string>& errors) {
  if (const Value* type = schema.find("type")) {
    bool ok = false;
    if (type->kind == Value::Kind::kString) {
      ok = kind_matches(v, type->string);
    } else if (type->kind == Value::Kind::kArray) {
      for (const Value& t : type->array) ok = ok || kind_matches(v, t.string);
    }
    if (!ok) {
      errors.push_back(path + ": expected type " +
                       (type->kind == Value::Kind::kString ? type->string
                                                           : "(union)") +
                       ", got " + kind_name(v.kind));
      return;  // structural checks below would only cascade
    }
  }
  if (const Value* required = schema.find("required")) {
    for (const Value& name : required->array) {
      if (v.kind == Value::Kind::kObject && v.find(name.string) == nullptr) {
        errors.push_back(path + ": missing required property \"" + name.string +
                         "\"");
      }
    }
  }
  if (const Value* props = schema.find("properties")) {
    if (v.kind == Value::Kind::kObject) {
      for (const auto& [name, sub] : props->object) {
        if (const Value* child = v.find(name)) {
          validate(*child, sub, path + "." + name, errors);
        }
      }
    }
  }
  if (const Value* items = schema.find("items")) {
    if (v.kind == Value::Kind::kArray) {
      for (std::size_t i = 0; i < v.array.size(); ++i) {
        validate(v.array[i], *items, path + "[" + std::to_string(i) + "]",
                 errors);
      }
    }
  }
}

/// The conservation guarantee specific to windows artifacts.
void check_windows_conservation(const Value& doc,
                                std::vector<std::string>& errors) {
  const Value* total = doc.find("total_energy_j");
  const Value* windows = doc.find("windows");
  if (total == nullptr || windows == nullptr) return;  // schema already flagged
  double sum = 0.0;
  for (const Value& w : windows->array) {
    if (const Value* e = w.find("energy_total_j")) sum += e->number;
  }
  const double scale = std::max(std::abs(total->number), 1e-30);
  const double rel = std::abs(sum - total->number) / scale;
  if (rel > 1e-9) {
    errors.push_back("windows: per-window energies sum to " +
                     std::to_string(sum) + " J but total_energy_j is " +
                     std::to_string(total->number) + " J (rel err " +
                     std::to_string(rel) + " > 1e-9)");
  }
}

/// Relative deviation of `sum` from `total` (guarding tiny totals).
double rel_err(double sum, double total) {
  return std::abs(sum - total) / std::max(std::abs(total), 1e-30);
}

/// The conservation guarantees specific to transaction-stream artifacts.
void check_txns_conservation(const Value& doc,
                             std::vector<std::string>& errors) {
  const Value* total = doc.find("total_energy_j");
  const Value* bus = doc.find("bus_energy_j");
  if (total == nullptr || bus == nullptr) return;  // schema already flagged

  if (const Value* txns = doc.find("txns")) {
    double sum = bus->number;
    for (const Value& t : txns->array) {
      if (const Value* e = t.find("energy_j")) sum += e->number;
    }
    const double rel = rel_err(sum, total->number);
    if (rel > 1e-9) {
      errors.push_back("txns: per-transaction energies + bus_energy_j sum to " +
                       std::to_string(sum) + " J but total_energy_j is " +
                       std::to_string(total->number) + " J (rel err " +
                       std::to_string(rel) + " > 1e-9)");
    }
  }
  if (const Value* masters = doc.find("masters")) {
    double sum = bus->number;
    for (const Value& m : masters->array) {
      if (const Value* e = m.find("energy_j")) sum += e->number;
    }
    const double rel = rel_err(sum, total->number);
    if (rel > 1e-9) {
      errors.push_back("masters: attributed energies + bus_energy_j sum to " +
                       std::to_string(sum) + " J but total_energy_j is " +
                       std::to_string(total->number) + " J (rel err " +
                       std::to_string(rel) + " > 1e-9)");
    }
  }
}

/// Per-run attribution conservation for campaign.v2 artifacts.
void check_campaign_attribution(const Value& doc,
                                std::vector<std::string>& errors) {
  const Value* runs = doc.find("runs");
  if (runs == nullptr) return;
  for (std::size_t i = 0; i < runs->array.size(); ++i) {
    const Value& run = runs->array[i];
    const Value* attribution = run.find("attribution");
    const Value* total = run.find("total_energy_j");
    if (attribution == nullptr || total == nullptr) continue;
    const Value* bus = attribution->find("bus_energy_j");
    const Value* masters = attribution->find("masters");
    if (bus == nullptr || masters == nullptr) continue;
    double sum = bus->number;
    for (const Value& m : masters->array) {
      if (const Value* e = m.find("energy_j")) sum += e->number;
    }
    const double rel = rel_err(sum, total->number);
    if (rel > 1e-9) {
      errors.push_back("runs[" + std::to_string(i) +
                       "].attribution: master energies + bus_energy_j sum to " +
                       std::to_string(sum) + " J but total_energy_j is " +
                       std::to_string(total->number) + " J (rel err " +
                       std::to_string(rel) + " > 1e-9)");
    }
  }
}

/// Degraded-block consistency for campaign.v3/v4 artifacts. The
/// "crashed" status (and its degraded-block count) exists from v4 on.
void check_campaign_degraded(const Value& doc, bool v4,
                             std::vector<std::string>& errors) {
  const Value* runs = doc.find("runs");
  if (runs == nullptr) return;

  std::size_t not_ok = 0;
  std::size_t n_failed = 0;
  std::size_t n_timed_out = 0;
  std::size_t n_cancelled = 0;
  std::size_t n_crashed = 0;
  for (std::size_t i = 0; i < runs->array.size(); ++i) {
    const Value& run = runs->array[i];
    const Value* ok = run.find("ok");
    const Value* status = run.find("status");
    if (ok == nullptr || status == nullptr) continue;  // schema already flagged
    const std::string& s = status->string;
    if (s != "ok" && s != "failed" && s != "timed_out" && s != "cancelled" &&
        !(v4 && s == "crashed")) {
      errors.push_back("runs[" + std::to_string(i) + "].status: unknown value \"" +
                       s + "\"");
      continue;
    }
    if (ok->boolean != (s == "ok")) {
      errors.push_back("runs[" + std::to_string(i) +
                       "]: \"ok\" disagrees with status \"" + s + "\"");
    }
    if (s == "ok") continue;
    ++not_ok;
    if (s == "failed") ++n_failed;
    if (s == "timed_out") ++n_timed_out;
    if (s == "cancelled") ++n_cancelled;
    if (s == "crashed") ++n_crashed;
  }

  const Value* degraded = doc.find("degraded");
  if (degraded == nullptr) {
    if (not_ok != 0) {
      errors.push_back("degraded: block missing although " +
                       std::to_string(not_ok) + " run(s) did not complete");
    }
    return;
  }
  if (not_ok == 0) {
    errors.push_back("degraded: block present although every run completed");
    return;
  }
  auto check_count = [&](const char* key, std::size_t expected) {
    const Value* c = degraded->find(key);
    if (c != nullptr && static_cast<std::size_t>(c->number) != expected) {
      errors.push_back(std::string("degraded.") + key + ": " +
                       std::to_string(static_cast<std::size_t>(c->number)) +
                       " does not match the run list (" +
                       std::to_string(expected) + ")");
    }
  };
  check_count("count", not_ok);
  check_count("failed", n_failed);
  check_count("timed_out", n_timed_out);
  check_count("cancelled", n_cancelled);
  if (v4) check_count("crashed", n_crashed);
  if (const Value* druns = degraded->find("runs")) {
    if (druns->array.size() != not_ok) {
      errors.push_back("degraded.runs: " + std::to_string(druns->array.size()) +
                       " entries for " + std::to_string(not_ok) +
                       " non-ok run(s)");
    }
  }
}

std::string read_file(const char* path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error(std::string("cannot read ") + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// --- campaign write-ahead journal (binary) validation -----------------------
//
// Mirrors the framing in src/campaign/journal.cpp: an ASCII schema line,
// a "config=<16 hex digits>" campaign-fingerprint line, then
// [u32 len LE][u64 fnv1a64 LE][payload] frames, each payload one
// serialized run outcome.

constexpr const char kJournalHeader[] = "ahbpower.journal.v1\n";
constexpr const char kJournalConfigPrefix[] = "config=";

std::uint64_t fnv1a64(const std::string& data, std::size_t pos,
                      std::size_t len) {
  std::uint64_t h = 14695981039346656037ull;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= static_cast<unsigned char>(data[pos + i]);
    h *= 1099511628211ull;
  }
  return h;
}

/// Bounds-checked little-endian reader over one frame payload.
class ByteReader {
 public:
  ByteReader(const std::string& data, std::size_t pos, std::size_t len)
      : data_(data), pos_(pos), end_(pos + len) {}

  bool u8(std::uint64_t& v) { return fixed(1, v); }
  bool u32(std::uint64_t& v) { return fixed(4, v); }
  bool u64(std::uint64_t& v) { return fixed(8, v); }
  bool f64() {
    std::uint64_t bits;
    return u64(bits);
  }
  bool str() {
    std::uint64_t n = 0;
    if (!u32(n)) return false;
    if (end_ - pos_ < n) return false;
    pos_ += n;
    return true;
  }
  [[nodiscard]] bool done() const { return pos_ == end_; }

 private:
  bool fixed(std::size_t n, std::uint64_t& v) {
    if (end_ - pos_ < n) return false;
    v = 0;
    for (std::size_t i = 0; i < n; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += n;
    return true;
  }

  const std::string& data_;
  std::size_t pos_;
  std::size_t end_;
};

/// Structural decode of one journaled outcome (field layout mirrors
/// campaign::encode_outcome). Returns false when the payload is not a
/// well-formed outcome record.
bool journal_outcome_decodes(const std::string& data, std::size_t pos,
                             std::size_t len, std::string& why) {
  ByteReader rd(data, pos, len);
  std::uint64_t status = 0;
  std::uint64_t scratch = 0;
  if (!rd.u64(scratch) || !rd.str() || !rd.u8(status) || !rd.u32(scratch) ||
      !rd.str() || !rd.f64() || !rd.u32(scratch)) {
    why = "truncated outcome header";
    return false;
  }
  if (status > 4) {  // ok..crashed
    why = "unknown status byte " + std::to_string(status);
    return false;
  }
  std::uint64_t n = 0;
  if (!rd.f64() || !rd.f64() || !rd.f64() || !rd.f64() || !rd.f64() ||
      !rd.u64(scratch) || !rd.u64(scratch) || !rd.u32(n)) {
    why = "truncated power report";
    return false;
  }
  for (std::uint64_t i = 0; i < n; ++i) {
    if (!rd.str() || !rd.f64()) {
      why = "truncated metrics map";
      return false;
    }
  }
  if (!rd.u32(n)) {
    why = "truncated attribution count";
    return false;
  }
  for (std::uint64_t i = 0; i < n; ++i) {
    if (!rd.f64() || !rd.u64(scratch)) {
      why = "truncated attribution entry";
      return false;
    }
  }
  if (!rd.f64()) {
    why = "missing bus energy";
    return false;
  }
  if (!rd.done()) {
    why = "trailing bytes after outcome";
    return false;
  }
  return true;
}

/// Validates a binary campaign journal: header, per-frame checksums and
/// structural decodability. A torn tail (partial final frame) is the
/// expected shape of a crash mid-append and passes; a checksum mismatch
/// on a *complete* frame is corruption and fails.
int validate_journal(const char* path, const std::string& data) {
  std::size_t pos = std::strlen(kJournalHeader);
  // The mandatory config line: "config=" + 16 lowercase hex + "\n".
  const std::size_t cfg_prefix = std::strlen(kJournalConfigPrefix);
  std::uint64_t fingerprint = 0;
  bool cfg_ok = data.size() >= pos + cfg_prefix + 17 &&
                data.compare(pos, cfg_prefix, kJournalConfigPrefix) == 0 &&
                data[pos + cfg_prefix + 16] == '\n';
  for (std::size_t i = 0; cfg_ok && i < 16; ++i) {
    const char c = data[pos + cfg_prefix + i];
    if (c >= '0' && c <= '9') {
      fingerprint = (fingerprint << 4) | static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      fingerprint = (fingerprint << 4) |
                    static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      cfg_ok = false;
    }
  }
  if (!cfg_ok) {
    std::fprintf(stderr, "%s: missing or malformed config fingerprint line\n",
                 path);
    return 1;
  }
  pos += cfg_prefix + 17;
  std::size_t frames = 0;
  bool torn = false;
  while (pos < data.size()) {
    if (data.size() - pos < 12) {
      torn = true;
      break;
    }
    std::uint64_t len = 0;
    std::uint64_t checksum = 0;
    ByteReader prefix(data, pos, 12);
    prefix.u32(len);
    prefix.u64(checksum);
    if (len > (1u << 28)) {
      std::fprintf(stderr, "%s: frame at offset %zu has absurd length %llu\n",
                   path, pos, static_cast<unsigned long long>(len));
      return 1;
    }
    if (data.size() - pos - 12 < len) {
      torn = true;
      break;
    }
    if (fnv1a64(data, pos + 12, len) != checksum) {
      std::fprintf(stderr, "%s: checksum mismatch in frame at offset %zu\n",
                   path, pos);
      return 1;
    }
    std::string why;
    if (!journal_outcome_decodes(data, pos + 12, len, why)) {
      std::fprintf(stderr, "%s: undecodable outcome at offset %zu: %s\n", path,
                   pos, why.c_str());
      return 1;
    }
    ++frames;
    pos += 12 + len;
  }
  std::printf("%s: valid (ahbpower.journal.v1, config %016llx, "
              "%zu frame(s)%s)\n",
              path, static_cast<unsigned long long>(fingerprint), frames,
              torn ? ", torn tail tolerated" : "");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: %s <schema-catalogue.json> <artifact.json>\n",
                 argv[0]);
    return 2;
  }
  try {
    const std::string artifact = read_file(argv[2]);
    if (artifact.compare(0, std::strlen(kJournalHeader), kJournalHeader) == 0) {
      return validate_journal(argv[2], artifact);
    }

    const Value catalogue = Parser(read_file(argv[1])).parse();
    const Value doc = Parser(artifact).parse();

    const Value* id = doc.find("schema");
    if (id == nullptr || id->kind != Value::Kind::kString) {
      std::fprintf(stderr, "%s: no top-level \"schema\" string\n", argv[2]);
      return 1;
    }
    const Value* schema = catalogue.find(id->string);
    if (schema == nullptr) {
      std::fprintf(stderr, "%s: unknown schema \"%s\"\n", argv[2],
                   id->string.c_str());
      return 1;
    }

    std::vector<std::string> errors;
    validate(doc, *schema, "$", errors);
    if (id->string == "ahbpower.windows.v1") {
      check_windows_conservation(doc, errors);
    }
    if (id->string == "ahbpower.txns.v1") {
      check_txns_conservation(doc, errors);
    }
    if (id->string == "ahbpower.campaign.v2" ||
        id->string == "ahbpower.campaign.v3" ||
        id->string == "ahbpower.campaign.v4") {
      check_campaign_attribution(doc, errors);
    }
    if (id->string == "ahbpower.campaign.v3" ||
        id->string == "ahbpower.campaign.v4") {
      check_campaign_degraded(doc, id->string == "ahbpower.campaign.v4",
                              errors);
    }
    if (!errors.empty()) {
      for (const std::string& e : errors) {
        std::fprintf(stderr, "%s: %s\n", argv[2], e.c_str());
      }
      return 1;
    }
    std::printf("%s: valid (%s)\n", argv[2], id->string.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
}
