// telemetry_validate -- check a telemetry JSON artifact against the
// checked-in schema catalogue.
//
//   telemetry_validate <schema-catalogue.json> <artifact.json>
//
// The catalogue (tools/telemetry_schema.json) maps schema identifiers
// ("ahbpower.windows.v1", ...) to JSON-Schema-style descriptions; the
// artifact names its own schema via its top-level "schema" field. The
// checker implements the subset of JSON Schema the contract needs --
// "type", "properties", "required", "items" -- over a small hand-rolled
// recursive-descent JSON parser, so validation needs no third-party
// dependency.
//
// For "ahbpower.windows.v1" artifacts it additionally enforces the
// conservation guarantee from docs/OBSERVABILITY.md: per-window energies
// must sum to total_energy_j within 1e-9 relative error. For
// "ahbpower.txns.v1" the analogous guarantee is enforced twice over:
// per-transaction energies + bus_energy_j == total_energy_j, and
// per-master attributed energies + bus_energy_j == total_energy_j. For
// "ahbpower.campaign.v2"/"v3"/"v4" every run carrying an attribution
// block must satisfy attributed master energies + bus_energy_j ==
// total_energy_j. v3/v4 artifacts additionally get their degraded block
// cross-checked: per-run "ok"/"status" consistency, the block's counts
// against the run list, and one degraded entry per non-ok run (v4 adds
// the "crashed" status and count).
//
// Binary artifacts are also understood: a file opening with the
// "ahbpower.journal.v1" header line is checked as a campaign
// write-ahead journal -- every complete [len][fnv1a64][payload] frame
// must pass its checksum and decode structurally; a torn tail (partial
// frame from a crash mid-append) is tolerated and reported.
//
// JSONL event logs (a first line naming "ahbpower.events.v1") are
// validated line by line: every event must carry the envelope (seq,
// t_mono_us, t_wall_us, type), seq must increase by exactly 1 from 1,
// t_mono_us must be non-decreasing, and when a campaign_finish event is
// present its per-status counts must equal the run_finish events
// actually observed -- the replay guarantee behind post-mortems.
//
// "ahbpower.status.v1" snapshots additionally get their counts
// cross-checked: done == ok+failed+crashed+timed_out+cancelled,
// in_flight == workers[].length, stalled_workers == the stalled
// entries in workers[].
//
// Exit 0 when valid, 1 on a contract violation, 2 on bad usage / I/O.

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "mini_json.hpp"

namespace {

using minijson::Parser;
using minijson::Value;

// --- schema-subset checker -------------------------------------------------

const char* kind_name(Value::Kind k) {
  switch (k) {
    case Value::Kind::kNull: return "null";
    case Value::Kind::kBool: return "boolean";
    case Value::Kind::kNumber: return "number";
    case Value::Kind::kString: return "string";
    case Value::Kind::kArray: return "array";
    case Value::Kind::kObject: return "object";
  }
  return "?";
}

bool kind_matches(const Value& v, const std::string& type) {
  switch (v.kind) {
    case Value::Kind::kNull: return type == "null";
    case Value::Kind::kBool: return type == "boolean";
    case Value::Kind::kNumber:
      return type == "number" ||
             (type == "integer" && v.number == std::floor(v.number));
    case Value::Kind::kString: return type == "string";
    case Value::Kind::kArray: return type == "array";
    case Value::Kind::kObject: return type == "object";
  }
  return false;
}

/// Validates `v` against the supported schema subset, appending one line
/// per violation ("<path>: <reason>") to `errors`.
void validate(const Value& v, const Value& schema, const std::string& path,
              std::vector<std::string>& errors) {
  if (const Value* type = schema.find("type")) {
    bool ok = false;
    if (type->kind == Value::Kind::kString) {
      ok = kind_matches(v, type->string);
    } else if (type->kind == Value::Kind::kArray) {
      for (const Value& t : type->array) ok = ok || kind_matches(v, t.string);
    }
    if (!ok) {
      errors.push_back(path + ": expected type " +
                       (type->kind == Value::Kind::kString ? type->string
                                                           : "(union)") +
                       ", got " + kind_name(v.kind));
      return;  // structural checks below would only cascade
    }
  }
  if (const Value* required = schema.find("required")) {
    for (const Value& name : required->array) {
      if (v.kind == Value::Kind::kObject && v.find(name.string) == nullptr) {
        errors.push_back(path + ": missing required property \"" + name.string +
                         "\"");
      }
    }
  }
  if (const Value* props = schema.find("properties")) {
    if (v.kind == Value::Kind::kObject) {
      for (const auto& [name, sub] : props->object) {
        if (const Value* child = v.find(name)) {
          validate(*child, sub, path + "." + name, errors);
        }
      }
    }
  }
  if (const Value* items = schema.find("items")) {
    if (v.kind == Value::Kind::kArray) {
      for (std::size_t i = 0; i < v.array.size(); ++i) {
        validate(v.array[i], *items, path + "[" + std::to_string(i) + "]",
                 errors);
      }
    }
  }
}

/// The conservation guarantee specific to windows artifacts.
void check_windows_conservation(const Value& doc,
                                std::vector<std::string>& errors) {
  const Value* total = doc.find("total_energy_j");
  const Value* windows = doc.find("windows");
  if (total == nullptr || windows == nullptr) return;  // schema already flagged
  double sum = 0.0;
  for (const Value& w : windows->array) {
    if (const Value* e = w.find("energy_total_j")) sum += e->number;
  }
  const double scale = std::max(std::abs(total->number), 1e-30);
  const double rel = std::abs(sum - total->number) / scale;
  if (rel > 1e-9) {
    errors.push_back("windows: per-window energies sum to " +
                     std::to_string(sum) + " J but total_energy_j is " +
                     std::to_string(total->number) + " J (rel err " +
                     std::to_string(rel) + " > 1e-9)");
  }
}

/// Relative deviation of `sum` from `total` (guarding tiny totals).
double rel_err(double sum, double total) {
  return std::abs(sum - total) / std::max(std::abs(total), 1e-30);
}

/// The conservation guarantees specific to transaction-stream artifacts.
void check_txns_conservation(const Value& doc,
                             std::vector<std::string>& errors) {
  const Value* total = doc.find("total_energy_j");
  const Value* bus = doc.find("bus_energy_j");
  if (total == nullptr || bus == nullptr) return;  // schema already flagged

  if (const Value* txns = doc.find("txns")) {
    double sum = bus->number;
    for (const Value& t : txns->array) {
      if (const Value* e = t.find("energy_j")) sum += e->number;
    }
    const double rel = rel_err(sum, total->number);
    if (rel > 1e-9) {
      errors.push_back("txns: per-transaction energies + bus_energy_j sum to " +
                       std::to_string(sum) + " J but total_energy_j is " +
                       std::to_string(total->number) + " J (rel err " +
                       std::to_string(rel) + " > 1e-9)");
    }
  }
  if (const Value* masters = doc.find("masters")) {
    double sum = bus->number;
    for (const Value& m : masters->array) {
      if (const Value* e = m.find("energy_j")) sum += e->number;
    }
    const double rel = rel_err(sum, total->number);
    if (rel > 1e-9) {
      errors.push_back("masters: attributed energies + bus_energy_j sum to " +
                       std::to_string(sum) + " J but total_energy_j is " +
                       std::to_string(total->number) + " J (rel err " +
                       std::to_string(rel) + " > 1e-9)");
    }
  }
}

/// Per-run attribution conservation for campaign.v2 artifacts.
void check_campaign_attribution(const Value& doc,
                                std::vector<std::string>& errors) {
  const Value* runs = doc.find("runs");
  if (runs == nullptr) return;
  for (std::size_t i = 0; i < runs->array.size(); ++i) {
    const Value& run = runs->array[i];
    const Value* attribution = run.find("attribution");
    const Value* total = run.find("total_energy_j");
    if (attribution == nullptr || total == nullptr) continue;
    const Value* bus = attribution->find("bus_energy_j");
    const Value* masters = attribution->find("masters");
    if (bus == nullptr || masters == nullptr) continue;
    double sum = bus->number;
    for (const Value& m : masters->array) {
      if (const Value* e = m.find("energy_j")) sum += e->number;
    }
    const double rel = rel_err(sum, total->number);
    if (rel > 1e-9) {
      errors.push_back("runs[" + std::to_string(i) +
                       "].attribution: master energies + bus_energy_j sum to " +
                       std::to_string(sum) + " J but total_energy_j is " +
                       std::to_string(total->number) + " J (rel err " +
                       std::to_string(rel) + " > 1e-9)");
    }
  }
}

/// Degraded-block consistency for campaign.v3/v4 artifacts. The
/// "crashed" status (and its degraded-block count) exists from v4 on.
void check_campaign_degraded(const Value& doc, bool v4,
                             std::vector<std::string>& errors) {
  const Value* runs = doc.find("runs");
  if (runs == nullptr) return;

  std::size_t not_ok = 0;
  std::size_t n_failed = 0;
  std::size_t n_timed_out = 0;
  std::size_t n_cancelled = 0;
  std::size_t n_crashed = 0;
  for (std::size_t i = 0; i < runs->array.size(); ++i) {
    const Value& run = runs->array[i];
    const Value* ok = run.find("ok");
    const Value* status = run.find("status");
    if (ok == nullptr || status == nullptr) continue;  // schema already flagged
    const std::string& s = status->string;
    if (s != "ok" && s != "failed" && s != "timed_out" && s != "cancelled" &&
        !(v4 && s == "crashed")) {
      errors.push_back("runs[" + std::to_string(i) + "].status: unknown value \"" +
                       s + "\"");
      continue;
    }
    if (ok->boolean != (s == "ok")) {
      errors.push_back("runs[" + std::to_string(i) +
                       "]: \"ok\" disagrees with status \"" + s + "\"");
    }
    if (s == "ok") continue;
    ++not_ok;
    if (s == "failed") ++n_failed;
    if (s == "timed_out") ++n_timed_out;
    if (s == "cancelled") ++n_cancelled;
    if (s == "crashed") ++n_crashed;
  }

  const Value* degraded = doc.find("degraded");
  if (degraded == nullptr) {
    if (not_ok != 0) {
      errors.push_back("degraded: block missing although " +
                       std::to_string(not_ok) + " run(s) did not complete");
    }
    return;
  }
  if (not_ok == 0) {
    errors.push_back("degraded: block present although every run completed");
    return;
  }
  auto check_count = [&](const char* key, std::size_t expected) {
    const Value* c = degraded->find(key);
    if (c != nullptr && static_cast<std::size_t>(c->number) != expected) {
      errors.push_back(std::string("degraded.") + key + ": " +
                       std::to_string(static_cast<std::size_t>(c->number)) +
                       " does not match the run list (" +
                       std::to_string(expected) + ")");
    }
  };
  check_count("count", not_ok);
  check_count("failed", n_failed);
  check_count("timed_out", n_timed_out);
  check_count("cancelled", n_cancelled);
  if (v4) check_count("crashed", n_crashed);
  if (const Value* druns = degraded->find("runs")) {
    if (druns->array.size() != not_ok) {
      errors.push_back("degraded.runs: " + std::to_string(druns->array.size()) +
                       " entries for " + std::to_string(not_ok) +
                       " non-ok run(s)");
    }
  }
}

/// Count conservation inside one live status snapshot.
void check_status_consistency(const Value& doc,
                              std::vector<std::string>& errors) {
  const auto count = [&doc](const char* key) -> double {
    const Value* v = doc.find(key);
    return v == nullptr ? 0.0 : v->number;
  };
  const double terminal = count("ok") + count("failed") + count("crashed") +
                          count("timed_out") + count("cancelled");
  if (doc.find("done") != nullptr && count("done") != terminal) {
    errors.push_back("status: done (" +
                     std::to_string(static_cast<long long>(count("done"))) +
                     ") != ok+failed+crashed+timed_out+cancelled (" +
                     std::to_string(static_cast<long long>(terminal)) + ")");
  }
  const Value* workers = doc.find("workers");
  if (workers == nullptr) return;  // schema already flagged
  if (doc.find("in_flight") != nullptr &&
      static_cast<std::size_t>(count("in_flight")) != workers->array.size()) {
    errors.push_back("status: in_flight (" +
                     std::to_string(static_cast<long long>(count("in_flight"))) +
                     ") != workers[] length (" +
                     std::to_string(workers->array.size()) + ")");
  }
  std::size_t stalled = 0;
  for (const Value& w : workers->array) {
    const Value* s = w.find("stalled");
    if (s != nullptr && s->boolean) ++stalled;
  }
  if (doc.find("stalled_workers") != nullptr &&
      static_cast<std::size_t>(count("stalled_workers")) != stalled) {
    errors.push_back(
        "status: stalled_workers (" +
        std::to_string(static_cast<long long>(count("stalled_workers"))) +
        ") != stalled entries in workers[] (" + std::to_string(stalled) + ")");
  }
}

// --- structured event log (JSONL) validation --------------------------------

constexpr const char kEventsSchemaId[] = "ahbpower.events.v1";

/// True when `text` is a JSONL event log: the first line is a JSON
/// object whose "schema" field names the events schema. Cheap substring
/// probe first so arbitrary binaries are not parsed.
bool looks_like_event_log(const std::string& text) {
  const std::size_t eol = text.find('\n');
  const std::string first = text.substr(0, eol);
  if (first.find(kEventsSchemaId) == std::string::npos) return false;
  try {
    const Value header = Parser(first).parse();
    const Value* schema = header.find("schema");
    return schema != nullptr && schema->string == kEventsSchemaId;
  } catch (const std::exception&) {
    return false;
  }
}

/// Validates a JSONL event log: per-line schema checks plus the stream
/// invariants (seq contiguity, monotonic timestamps) and the replay
/// guarantee (campaign_finish counts == observed run_finish events).
int validate_events(const char* path, const Value& catalogue,
                    const std::string& text) {
  const Value* line_schema = catalogue.find(kEventsSchemaId);
  std::vector<std::string> errors;

  std::uint64_t expected_seq = 1;
  double last_mono = -1.0;
  std::map<std::string, std::uint64_t> finish_by_status;
  std::uint64_t restored_seen = 0;
  const Value* campaign_finish = nullptr;
  Value campaign_finish_storage;

  std::size_t line_no = 1;  // the header line
  std::size_t pos = text.find('\n');
  pos = pos == std::string::npos ? text.size() : pos + 1;
  std::size_t n_events = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (line.empty()) continue;
    Value ev;
    try {
      ev = Parser(line).parse();
    } catch (const std::exception& e) {
      errors.push_back("line " + std::to_string(line_no) + ": " + e.what());
      break;  // a torn line ends the stream; anything after is noise
    }
    ++n_events;
    if (line_schema != nullptr) {
      validate(ev, *line_schema, "line " + std::to_string(line_no), errors);
    }
    const Value* seq = ev.find("seq");
    if (seq != nullptr && static_cast<std::uint64_t>(seq->number) !=
                              expected_seq) {
      errors.push_back("line " + std::to_string(line_no) + ": seq " +
                       std::to_string(static_cast<std::uint64_t>(seq->number)) +
                       " breaks the contiguous sequence (expected " +
                       std::to_string(expected_seq) + ")");
    }
    ++expected_seq;
    if (const Value* mono = ev.find("t_mono_us")) {
      if (mono->number < last_mono) {
        errors.push_back("line " + std::to_string(line_no) +
                         ": t_mono_us went backwards");
      }
      last_mono = mono->number;
    }
    const Value* type = ev.find("type");
    if (type == nullptr) continue;  // schema check already flagged it
    if (type->string == "run_finish") {
      if (const Value* status = ev.find("status")) {
        ++finish_by_status[status->string];
      }
    } else if (type->string == "run_restored") {
      ++restored_seen;
    } else if (type->string == "campaign_finish") {
      campaign_finish_storage = ev;
      campaign_finish = &campaign_finish_storage;
    }
  }

  if (campaign_finish != nullptr) {
    const auto check = [&](const char* key, std::uint64_t observed) {
      const Value* v = campaign_finish->find(key);
      if (v != nullptr && static_cast<std::uint64_t>(v->number) != observed) {
        errors.push_back(std::string("campaign_finish.") + key + " (" +
                         std::to_string(static_cast<std::uint64_t>(v->number)) +
                         ") does not replay from the event stream (" +
                         std::to_string(observed) + " observed)");
      }
    };
    check("ok", finish_by_status["ok"]);
    check("failed", finish_by_status["failed"]);
    check("crashed", finish_by_status["crashed"]);
    check("timed_out", finish_by_status["timed_out"]);
    check("cancelled", finish_by_status["cancelled"]);
    check("restored", restored_seen);
  }

  if (!errors.empty()) {
    for (const std::string& e : errors) {
      std::fprintf(stderr, "%s: %s\n", path, e.c_str());
    }
    return 1;
  }
  std::printf("%s: valid (%s, %zu event(s)%s)\n", path, kEventsSchemaId,
              n_events,
              campaign_finish != nullptr ? ", replay counts match" : "");
  return 0;
}

std::string read_file(const char* path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error(std::string("cannot read ") + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// --- campaign write-ahead journal (binary) validation -----------------------
//
// Mirrors the framing in src/campaign/journal.cpp: an ASCII schema line,
// a "config=<16 hex digits>" campaign-fingerprint line, then
// [u32 len LE][u64 fnv1a64 LE][payload] frames, each payload one
// serialized run outcome.

constexpr const char kJournalHeader[] = "ahbpower.journal.v1\n";
constexpr const char kJournalConfigPrefix[] = "config=";

std::uint64_t fnv1a64(const std::string& data, std::size_t pos,
                      std::size_t len) {
  std::uint64_t h = 14695981039346656037ull;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= static_cast<unsigned char>(data[pos + i]);
    h *= 1099511628211ull;
  }
  return h;
}

/// Bounds-checked little-endian reader over one frame payload.
class ByteReader {
 public:
  ByteReader(const std::string& data, std::size_t pos, std::size_t len)
      : data_(data), pos_(pos), end_(pos + len) {}

  bool u8(std::uint64_t& v) { return fixed(1, v); }
  bool u32(std::uint64_t& v) { return fixed(4, v); }
  bool u64(std::uint64_t& v) { return fixed(8, v); }
  bool f64() {
    std::uint64_t bits;
    return u64(bits);
  }
  bool str() {
    std::uint64_t n = 0;
    if (!u32(n)) return false;
    if (end_ - pos_ < n) return false;
    pos_ += n;
    return true;
  }
  [[nodiscard]] bool done() const { return pos_ == end_; }

 private:
  bool fixed(std::size_t n, std::uint64_t& v) {
    if (end_ - pos_ < n) return false;
    v = 0;
    for (std::size_t i = 0; i < n; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += n;
    return true;
  }

  const std::string& data_;
  std::size_t pos_;
  std::size_t end_;
};

/// Structural decode of one journaled outcome (field layout mirrors
/// campaign::encode_outcome). Returns false when the payload is not a
/// well-formed outcome record.
bool journal_outcome_decodes(const std::string& data, std::size_t pos,
                             std::size_t len, std::string& why) {
  ByteReader rd(data, pos, len);
  std::uint64_t status = 0;
  std::uint64_t scratch = 0;
  if (!rd.u64(scratch) || !rd.str() || !rd.u8(status) || !rd.u32(scratch) ||
      !rd.str() || !rd.f64() || !rd.u32(scratch)) {
    why = "truncated outcome header";
    return false;
  }
  if (status > 4) {  // ok..crashed
    why = "unknown status byte " + std::to_string(status);
    return false;
  }
  std::uint64_t n = 0;
  if (!rd.f64() || !rd.f64() || !rd.f64() || !rd.f64() || !rd.f64() ||
      !rd.u64(scratch) || !rd.u64(scratch) || !rd.u32(n)) {
    why = "truncated power report";
    return false;
  }
  for (std::uint64_t i = 0; i < n; ++i) {
    if (!rd.str() || !rd.f64()) {
      why = "truncated metrics map";
      return false;
    }
  }
  if (!rd.u32(n)) {
    why = "truncated attribution count";
    return false;
  }
  for (std::uint64_t i = 0; i < n; ++i) {
    if (!rd.f64() || !rd.u64(scratch)) {
      why = "truncated attribution entry";
      return false;
    }
  }
  if (!rd.f64()) {
    why = "missing bus energy";
    return false;
  }
  if (!rd.done()) {
    why = "trailing bytes after outcome";
    return false;
  }
  return true;
}

/// Validates a binary campaign journal: header, per-frame checksums and
/// structural decodability. A torn tail (partial final frame) is the
/// expected shape of a crash mid-append and passes; a checksum mismatch
/// on a *complete* frame is corruption and fails.
int validate_journal(const char* path, const std::string& data) {
  std::size_t pos = std::strlen(kJournalHeader);
  // The mandatory config line: "config=" + 16 lowercase hex + "\n".
  const std::size_t cfg_prefix = std::strlen(kJournalConfigPrefix);
  std::uint64_t fingerprint = 0;
  bool cfg_ok = data.size() >= pos + cfg_prefix + 17 &&
                data.compare(pos, cfg_prefix, kJournalConfigPrefix) == 0 &&
                data[pos + cfg_prefix + 16] == '\n';
  for (std::size_t i = 0; cfg_ok && i < 16; ++i) {
    const char c = data[pos + cfg_prefix + i];
    if (c >= '0' && c <= '9') {
      fingerprint = (fingerprint << 4) | static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      fingerprint = (fingerprint << 4) |
                    static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      cfg_ok = false;
    }
  }
  if (!cfg_ok) {
    std::fprintf(stderr, "%s: missing or malformed config fingerprint line\n",
                 path);
    return 1;
  }
  pos += cfg_prefix + 17;
  std::size_t frames = 0;
  bool torn = false;
  while (pos < data.size()) {
    if (data.size() - pos < 12) {
      torn = true;
      break;
    }
    std::uint64_t len = 0;
    std::uint64_t checksum = 0;
    ByteReader prefix(data, pos, 12);
    prefix.u32(len);
    prefix.u64(checksum);
    if (len > (1u << 28)) {
      std::fprintf(stderr, "%s: frame at offset %zu has absurd length %llu\n",
                   path, pos, static_cast<unsigned long long>(len));
      return 1;
    }
    if (data.size() - pos - 12 < len) {
      torn = true;
      break;
    }
    if (fnv1a64(data, pos + 12, len) != checksum) {
      std::fprintf(stderr, "%s: checksum mismatch in frame at offset %zu\n",
                   path, pos);
      return 1;
    }
    std::string why;
    if (!journal_outcome_decodes(data, pos + 12, len, why)) {
      std::fprintf(stderr, "%s: undecodable outcome at offset %zu: %s\n", path,
                   pos, why.c_str());
      return 1;
    }
    ++frames;
    pos += 12 + len;
  }
  std::printf("%s: valid (ahbpower.journal.v1, config %016llx, "
              "%zu frame(s)%s)\n",
              path, static_cast<unsigned long long>(fingerprint), frames,
              torn ? ", torn tail tolerated" : "");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: %s <schema-catalogue.json> <artifact.json>\n",
                 argv[0]);
    return 2;
  }
  try {
    const std::string artifact = read_file(argv[2]);
    if (artifact.compare(0, std::strlen(kJournalHeader), kJournalHeader) == 0) {
      return validate_journal(argv[2], artifact);
    }

    const Value catalogue = Parser(read_file(argv[1])).parse();
    if (looks_like_event_log(artifact)) {
      return validate_events(argv[2], catalogue, artifact);
    }
    const Value doc = Parser(artifact).parse();

    const Value* id = doc.find("schema");
    if (id == nullptr || id->kind != Value::Kind::kString) {
      std::fprintf(stderr, "%s: no top-level \"schema\" string\n", argv[2]);
      return 1;
    }
    const Value* schema = catalogue.find(id->string);
    if (schema == nullptr) {
      std::fprintf(stderr, "%s: unknown schema \"%s\"\n", argv[2],
                   id->string.c_str());
      return 1;
    }

    std::vector<std::string> errors;
    validate(doc, *schema, "$", errors);
    if (id->string == "ahbpower.windows.v1") {
      check_windows_conservation(doc, errors);
    }
    if (id->string == "ahbpower.txns.v1") {
      check_txns_conservation(doc, errors);
    }
    if (id->string == "ahbpower.campaign.v2" ||
        id->string == "ahbpower.campaign.v3" ||
        id->string == "ahbpower.campaign.v4") {
      check_campaign_attribution(doc, errors);
    }
    if (id->string == "ahbpower.campaign.v3" ||
        id->string == "ahbpower.campaign.v4") {
      check_campaign_degraded(doc, id->string == "ahbpower.campaign.v4",
                              errors);
    }
    if (id->string == "ahbpower.status.v1") {
      check_status_consistency(doc, errors);
    }
    if (!errors.empty()) {
      for (const std::string& e : errors) {
        std::fprintf(stderr, "%s: %s\n", argv[2], e.c_str());
      }
      return 1;
    }
    std::printf("%s: valid (%s)\n", argv[2], id->string.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
}
