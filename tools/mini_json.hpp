#pragma once
// Minimal JSON value + recursive-descent parser shared by the tools
// that consume telemetry artifacts (telemetry_validate, status_probe).
// Deliberately tiny: the artifacts are machine-generated ASCII, so the
// parser favors clarity over streaming performance, keeps \u escapes
// opaque and stores every number as double (the artifacts' integers are
// all well under 2^53).

#include <cctype>
#include <cstring>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace minijson {

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::map<std::string, Value> object;

  [[nodiscard]] const Value* find(const std::string& key) const {
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class Parser {
public:
  explicit Parser(std::string text) : text_(std::move(text)) {}

  Value parse() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

private:
  [[noreturn]] void fail(const std::string& what) const {
    std::size_t line = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') ++line;
    }
    throw std::runtime_error("JSON parse error at line " + std::to_string(line) +
                             ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Value parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        Value v;
        v.kind = Value::Kind::kString;
        v.string = parse_string();
        return v;
      }
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value{};
      default: return parse_number();
    }
  }

  static Value make_bool(bool b) {
    Value v;
    v.kind = Value::Kind::kBool;
    v.boolean = b;
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("bad escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            // Contract files are ASCII; keep escapes opaque but consume them.
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            out += '?';
            pos_ += 4;
            break;
          }
          default: fail("bad escape");
        }
      } else {
        out += c;
      }
    }
    fail("unterminated string");
  }

  Value parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            std::strchr("+-.eE", text_[pos_]) != nullptr)) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    Value v;
    v.kind = Value::Kind::kNumber;
    try {
      v.number = std::stod(text_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("bad number");
    }
    return v;
  }

  Value parse_array() {
    expect('[');
    Value v;
    v.kind = Value::Kind::kArray;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  Value parse_object() {
    expect('{');
    Value v;
    v.kind = Value::Kind::kObject;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      const std::string key = parse_string();
      expect(':');
      v.object.emplace(key, parse_value());
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  std::string text_;
  std::size_t pos_ = 0;
};

}  // namespace minijson
