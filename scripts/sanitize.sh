#!/usr/bin/env sh
# Sanitizer ctest jobs. Two modes:
#
#   scripts/sanitize.sh [asan] [build-dir]   (default mode; dir build-asan)
#       Configure with AddressSanitizer + UBSan (-DAHBP_SANITIZE=ON),
#       build everything and run the full test suite.
#
#   scripts/sanitize.sh tsan [build-dir]     (default dir build-tsan)
#       Configure with ThreadSanitizer (-DAHBP_SANITIZE_THREAD=ON) and
#       run the threaded suites directly: the thread-hosted kernels, the
#       campaign pool (including process isolation and concurrent
#       journal appends), the kernel stress tests and the live
#       observability layer (metrics scrapes racing writers, the event
#       log, the status server, the progress tracker). Binaries are
#       invoked directly rather than through ctest so the run covers
#       whole suites regardless of how gtest_discover_tests named the
#       individual cases.
#
# Exits non-zero if the build fails or any test trips a sanitizer.
# See docs/ROBUSTNESS.md.
set -eu

MODE="asan"
case "${1:-}" in
  asan|tsan) MODE="$1"; shift ;;
esac
SRC_DIR="$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)"

if [ "$MODE" = "tsan" ]; then
  BUILD_DIR="${1:-build-tsan}"
  cmake -S "$SRC_DIR" -B "$BUILD_DIR" -DAHBP_SANITIZE_THREAD=ON
  cmake --build "$BUILD_DIR" -j "$(nproc 2>/dev/null || echo 4)" \
      --target test_sim_kernel_threads test_campaign \
               test_campaign_journal test_campaign_isolation \
               test_sim_kernel_stress test_telemetry_metrics_concurrency \
               test_telemetry_events test_telemetry_status_server \
               test_campaign_progress
  # halt_on_error: a data-race report fails the suite immediately.
  for suite in test_sim_kernel_threads test_campaign test_campaign_journal \
               test_campaign_isolation test_sim_kernel_stress \
               test_telemetry_metrics_concurrency test_telemetry_events \
               test_telemetry_status_server test_campaign_progress; do
    TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
        "$BUILD_DIR/tests/$suite"
  done
  exit 0
fi

BUILD_DIR="${1:-build-asan}"
cmake -S "$SRC_DIR" -B "$BUILD_DIR" -DAHBP_SANITIZE=ON
cmake --build "$BUILD_DIR" -j "$(nproc 2>/dev/null || echo 4)"
# halt_on_error: make ASan findings fail the test immediately, like the
# -fno-sanitize-recover UBSan flags already do.
ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1}" \
    ctest --test-dir "$BUILD_DIR" --output-on-failure
