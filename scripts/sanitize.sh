#!/usr/bin/env sh
# Sanitizer ctest job: configure a dedicated build tree with
# AddressSanitizer + UBSan (-DAHBP_SANITIZE=ON), build everything, and
# run the full test suite under the instrumented binaries.
#
#   scripts/sanitize.sh [build-dir]    (default: build-asan)
#
# Exits non-zero if the build fails or any test trips a sanitizer.
# See docs/ROBUSTNESS.md.
set -eu

BUILD_DIR="${1:-build-asan}"
SRC_DIR="$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)"

cmake -S "$SRC_DIR" -B "$BUILD_DIR" -DAHBP_SANITIZE=ON
cmake --build "$BUILD_DIR" -j "$(nproc 2>/dev/null || echo 4)"
# halt_on_error: make ASan findings fail the test immediately, like the
# -fno-sanitize-recover UBSan flags already do.
ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1}" \
    ctest --test-dir "$BUILD_DIR" --output-on-failure
