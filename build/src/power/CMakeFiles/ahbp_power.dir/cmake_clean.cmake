file(REMOVE_RECURSE
  "CMakeFiles/ahbp_power.dir/activity.cpp.o"
  "CMakeFiles/ahbp_power.dir/activity.cpp.o.d"
  "CMakeFiles/ahbp_power.dir/analytic.cpp.o"
  "CMakeFiles/ahbp_power.dir/analytic.cpp.o.d"
  "CMakeFiles/ahbp_power.dir/cosim.cpp.o"
  "CMakeFiles/ahbp_power.dir/cosim.cpp.o.d"
  "CMakeFiles/ahbp_power.dir/estimator.cpp.o"
  "CMakeFiles/ahbp_power.dir/estimator.cpp.o.d"
  "CMakeFiles/ahbp_power.dir/governor.cpp.o"
  "CMakeFiles/ahbp_power.dir/governor.cpp.o.d"
  "CMakeFiles/ahbp_power.dir/macromodel.cpp.o"
  "CMakeFiles/ahbp_power.dir/macromodel.cpp.o.d"
  "CMakeFiles/ahbp_power.dir/power_fsm.cpp.o"
  "CMakeFiles/ahbp_power.dir/power_fsm.cpp.o.d"
  "CMakeFiles/ahbp_power.dir/report.cpp.o"
  "CMakeFiles/ahbp_power.dir/report.cpp.o.d"
  "CMakeFiles/ahbp_power.dir/styles.cpp.o"
  "CMakeFiles/ahbp_power.dir/styles.cpp.o.d"
  "CMakeFiles/ahbp_power.dir/system.cpp.o"
  "CMakeFiles/ahbp_power.dir/system.cpp.o.d"
  "CMakeFiles/ahbp_power.dir/trace.cpp.o"
  "CMakeFiles/ahbp_power.dir/trace.cpp.o.d"
  "libahbp_power.a"
  "libahbp_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahbp_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
