file(REMOVE_RECURSE
  "libahbp_power.a"
)
