# Empty dependencies file for ahbp_power.
# This may be replaced when dependencies are built.
