
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/activity.cpp" "src/power/CMakeFiles/ahbp_power.dir/activity.cpp.o" "gcc" "src/power/CMakeFiles/ahbp_power.dir/activity.cpp.o.d"
  "/root/repo/src/power/analytic.cpp" "src/power/CMakeFiles/ahbp_power.dir/analytic.cpp.o" "gcc" "src/power/CMakeFiles/ahbp_power.dir/analytic.cpp.o.d"
  "/root/repo/src/power/cosim.cpp" "src/power/CMakeFiles/ahbp_power.dir/cosim.cpp.o" "gcc" "src/power/CMakeFiles/ahbp_power.dir/cosim.cpp.o.d"
  "/root/repo/src/power/estimator.cpp" "src/power/CMakeFiles/ahbp_power.dir/estimator.cpp.o" "gcc" "src/power/CMakeFiles/ahbp_power.dir/estimator.cpp.o.d"
  "/root/repo/src/power/governor.cpp" "src/power/CMakeFiles/ahbp_power.dir/governor.cpp.o" "gcc" "src/power/CMakeFiles/ahbp_power.dir/governor.cpp.o.d"
  "/root/repo/src/power/macromodel.cpp" "src/power/CMakeFiles/ahbp_power.dir/macromodel.cpp.o" "gcc" "src/power/CMakeFiles/ahbp_power.dir/macromodel.cpp.o.d"
  "/root/repo/src/power/power_fsm.cpp" "src/power/CMakeFiles/ahbp_power.dir/power_fsm.cpp.o" "gcc" "src/power/CMakeFiles/ahbp_power.dir/power_fsm.cpp.o.d"
  "/root/repo/src/power/report.cpp" "src/power/CMakeFiles/ahbp_power.dir/report.cpp.o" "gcc" "src/power/CMakeFiles/ahbp_power.dir/report.cpp.o.d"
  "/root/repo/src/power/styles.cpp" "src/power/CMakeFiles/ahbp_power.dir/styles.cpp.o" "gcc" "src/power/CMakeFiles/ahbp_power.dir/styles.cpp.o.d"
  "/root/repo/src/power/system.cpp" "src/power/CMakeFiles/ahbp_power.dir/system.cpp.o" "gcc" "src/power/CMakeFiles/ahbp_power.dir/system.cpp.o.d"
  "/root/repo/src/power/trace.cpp" "src/power/CMakeFiles/ahbp_power.dir/trace.cpp.o" "gcc" "src/power/CMakeFiles/ahbp_power.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ahbp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/gate/CMakeFiles/ahbp_gate.dir/DependInfo.cmake"
  "/root/repo/build/src/ahb/CMakeFiles/ahbp_ahb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
