file(REMOVE_RECURSE
  "CMakeFiles/ahbp_sim.dir/clock.cpp.o"
  "CMakeFiles/ahbp_sim.dir/clock.cpp.o.d"
  "CMakeFiles/ahbp_sim.dir/event.cpp.o"
  "CMakeFiles/ahbp_sim.dir/event.cpp.o.d"
  "CMakeFiles/ahbp_sim.dir/kernel.cpp.o"
  "CMakeFiles/ahbp_sim.dir/kernel.cpp.o.d"
  "CMakeFiles/ahbp_sim.dir/module.cpp.o"
  "CMakeFiles/ahbp_sim.dir/module.cpp.o.d"
  "CMakeFiles/ahbp_sim.dir/object.cpp.o"
  "CMakeFiles/ahbp_sim.dir/object.cpp.o.d"
  "CMakeFiles/ahbp_sim.dir/process.cpp.o"
  "CMakeFiles/ahbp_sim.dir/process.cpp.o.d"
  "CMakeFiles/ahbp_sim.dir/report.cpp.o"
  "CMakeFiles/ahbp_sim.dir/report.cpp.o.d"
  "CMakeFiles/ahbp_sim.dir/time.cpp.o"
  "CMakeFiles/ahbp_sim.dir/time.cpp.o.d"
  "CMakeFiles/ahbp_sim.dir/vcd.cpp.o"
  "CMakeFiles/ahbp_sim.dir/vcd.cpp.o.d"
  "libahbp_sim.a"
  "libahbp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahbp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
