# Empty compiler generated dependencies file for ahbp_sim.
# This may be replaced when dependencies are built.
