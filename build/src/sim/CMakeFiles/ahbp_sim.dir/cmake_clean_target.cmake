file(REMOVE_RECURSE
  "libahbp_sim.a"
)
