
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/clock.cpp" "src/sim/CMakeFiles/ahbp_sim.dir/clock.cpp.o" "gcc" "src/sim/CMakeFiles/ahbp_sim.dir/clock.cpp.o.d"
  "/root/repo/src/sim/event.cpp" "src/sim/CMakeFiles/ahbp_sim.dir/event.cpp.o" "gcc" "src/sim/CMakeFiles/ahbp_sim.dir/event.cpp.o.d"
  "/root/repo/src/sim/kernel.cpp" "src/sim/CMakeFiles/ahbp_sim.dir/kernel.cpp.o" "gcc" "src/sim/CMakeFiles/ahbp_sim.dir/kernel.cpp.o.d"
  "/root/repo/src/sim/module.cpp" "src/sim/CMakeFiles/ahbp_sim.dir/module.cpp.o" "gcc" "src/sim/CMakeFiles/ahbp_sim.dir/module.cpp.o.d"
  "/root/repo/src/sim/object.cpp" "src/sim/CMakeFiles/ahbp_sim.dir/object.cpp.o" "gcc" "src/sim/CMakeFiles/ahbp_sim.dir/object.cpp.o.d"
  "/root/repo/src/sim/process.cpp" "src/sim/CMakeFiles/ahbp_sim.dir/process.cpp.o" "gcc" "src/sim/CMakeFiles/ahbp_sim.dir/process.cpp.o.d"
  "/root/repo/src/sim/report.cpp" "src/sim/CMakeFiles/ahbp_sim.dir/report.cpp.o" "gcc" "src/sim/CMakeFiles/ahbp_sim.dir/report.cpp.o.d"
  "/root/repo/src/sim/time.cpp" "src/sim/CMakeFiles/ahbp_sim.dir/time.cpp.o" "gcc" "src/sim/CMakeFiles/ahbp_sim.dir/time.cpp.o.d"
  "/root/repo/src/sim/vcd.cpp" "src/sim/CMakeFiles/ahbp_sim.dir/vcd.cpp.o" "gcc" "src/sim/CMakeFiles/ahbp_sim.dir/vcd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
