file(REMOVE_RECURSE
  "libahbp_cpu.a"
)
