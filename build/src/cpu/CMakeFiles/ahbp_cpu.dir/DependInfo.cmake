
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/ahb_cpu.cpp" "src/cpu/CMakeFiles/ahbp_cpu.dir/ahb_cpu.cpp.o" "gcc" "src/cpu/CMakeFiles/ahbp_cpu.dir/ahb_cpu.cpp.o.d"
  "/root/repo/src/cpu/core.cpp" "src/cpu/CMakeFiles/ahbp_cpu.dir/core.cpp.o" "gcc" "src/cpu/CMakeFiles/ahbp_cpu.dir/core.cpp.o.d"
  "/root/repo/src/cpu/isa.cpp" "src/cpu/CMakeFiles/ahbp_cpu.dir/isa.cpp.o" "gcc" "src/cpu/CMakeFiles/ahbp_cpu.dir/isa.cpp.o.d"
  "/root/repo/src/cpu/programs.cpp" "src/cpu/CMakeFiles/ahbp_cpu.dir/programs.cpp.o" "gcc" "src/cpu/CMakeFiles/ahbp_cpu.dir/programs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ahbp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ahb/CMakeFiles/ahbp_ahb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
