# Empty dependencies file for ahbp_cpu.
# This may be replaced when dependencies are built.
