file(REMOVE_RECURSE
  "CMakeFiles/ahbp_cpu.dir/ahb_cpu.cpp.o"
  "CMakeFiles/ahbp_cpu.dir/ahb_cpu.cpp.o.d"
  "CMakeFiles/ahbp_cpu.dir/core.cpp.o"
  "CMakeFiles/ahbp_cpu.dir/core.cpp.o.d"
  "CMakeFiles/ahbp_cpu.dir/isa.cpp.o"
  "CMakeFiles/ahbp_cpu.dir/isa.cpp.o.d"
  "CMakeFiles/ahbp_cpu.dir/programs.cpp.o"
  "CMakeFiles/ahbp_cpu.dir/programs.cpp.o.d"
  "libahbp_cpu.a"
  "libahbp_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahbp_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
