# CMake generated Testfile for 
# Source directory: /root/repo/src/apb
# Build directory: /root/repo/build/src/apb
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
