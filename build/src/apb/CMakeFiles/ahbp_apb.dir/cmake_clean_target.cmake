file(REMOVE_RECURSE
  "libahbp_apb.a"
)
