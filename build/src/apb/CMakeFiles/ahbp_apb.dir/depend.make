# Empty dependencies file for ahbp_apb.
# This may be replaced when dependencies are built.
