file(REMOVE_RECURSE
  "CMakeFiles/ahbp_apb.dir/bridge.cpp.o"
  "CMakeFiles/ahbp_apb.dir/bridge.cpp.o.d"
  "CMakeFiles/ahbp_apb.dir/peripherals.cpp.o"
  "CMakeFiles/ahbp_apb.dir/peripherals.cpp.o.d"
  "CMakeFiles/ahbp_apb.dir/power.cpp.o"
  "CMakeFiles/ahbp_apb.dir/power.cpp.o.d"
  "libahbp_apb.a"
  "libahbp_apb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahbp_apb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
