file(REMOVE_RECURSE
  "CMakeFiles/ahbp_charlib.dir/characterize.cpp.o"
  "CMakeFiles/ahbp_charlib.dir/characterize.cpp.o.d"
  "CMakeFiles/ahbp_charlib.dir/fit.cpp.o"
  "CMakeFiles/ahbp_charlib.dir/fit.cpp.o.d"
  "CMakeFiles/ahbp_charlib.dir/stimulus.cpp.o"
  "CMakeFiles/ahbp_charlib.dir/stimulus.cpp.o.d"
  "CMakeFiles/ahbp_charlib.dir/table.cpp.o"
  "CMakeFiles/ahbp_charlib.dir/table.cpp.o.d"
  "libahbp_charlib.a"
  "libahbp_charlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahbp_charlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
