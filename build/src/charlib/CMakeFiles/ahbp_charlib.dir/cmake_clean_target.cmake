file(REMOVE_RECURSE
  "libahbp_charlib.a"
)
