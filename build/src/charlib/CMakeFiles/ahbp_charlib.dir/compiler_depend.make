# Empty compiler generated dependencies file for ahbp_charlib.
# This may be replaced when dependencies are built.
