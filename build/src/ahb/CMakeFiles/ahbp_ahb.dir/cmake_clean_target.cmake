file(REMOVE_RECURSE
  "libahbp_ahb.a"
)
