file(REMOVE_RECURSE
  "CMakeFiles/ahbp_ahb.dir/arbiter.cpp.o"
  "CMakeFiles/ahbp_ahb.dir/arbiter.cpp.o.d"
  "CMakeFiles/ahbp_ahb.dir/burst.cpp.o"
  "CMakeFiles/ahbp_ahb.dir/burst.cpp.o.d"
  "CMakeFiles/ahbp_ahb.dir/bus.cpp.o"
  "CMakeFiles/ahbp_ahb.dir/bus.cpp.o.d"
  "CMakeFiles/ahbp_ahb.dir/decoder.cpp.o"
  "CMakeFiles/ahbp_ahb.dir/decoder.cpp.o.d"
  "CMakeFiles/ahbp_ahb.dir/master.cpp.o"
  "CMakeFiles/ahbp_ahb.dir/master.cpp.o.d"
  "CMakeFiles/ahbp_ahb.dir/monitor.cpp.o"
  "CMakeFiles/ahbp_ahb.dir/monitor.cpp.o.d"
  "CMakeFiles/ahbp_ahb.dir/mux.cpp.o"
  "CMakeFiles/ahbp_ahb.dir/mux.cpp.o.d"
  "CMakeFiles/ahbp_ahb.dir/slave.cpp.o"
  "CMakeFiles/ahbp_ahb.dir/slave.cpp.o.d"
  "CMakeFiles/ahbp_ahb.dir/trace.cpp.o"
  "CMakeFiles/ahbp_ahb.dir/trace.cpp.o.d"
  "CMakeFiles/ahbp_ahb.dir/types.cpp.o"
  "CMakeFiles/ahbp_ahb.dir/types.cpp.o.d"
  "libahbp_ahb.a"
  "libahbp_ahb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahbp_ahb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
