
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ahb/arbiter.cpp" "src/ahb/CMakeFiles/ahbp_ahb.dir/arbiter.cpp.o" "gcc" "src/ahb/CMakeFiles/ahbp_ahb.dir/arbiter.cpp.o.d"
  "/root/repo/src/ahb/burst.cpp" "src/ahb/CMakeFiles/ahbp_ahb.dir/burst.cpp.o" "gcc" "src/ahb/CMakeFiles/ahbp_ahb.dir/burst.cpp.o.d"
  "/root/repo/src/ahb/bus.cpp" "src/ahb/CMakeFiles/ahbp_ahb.dir/bus.cpp.o" "gcc" "src/ahb/CMakeFiles/ahbp_ahb.dir/bus.cpp.o.d"
  "/root/repo/src/ahb/decoder.cpp" "src/ahb/CMakeFiles/ahbp_ahb.dir/decoder.cpp.o" "gcc" "src/ahb/CMakeFiles/ahbp_ahb.dir/decoder.cpp.o.d"
  "/root/repo/src/ahb/master.cpp" "src/ahb/CMakeFiles/ahbp_ahb.dir/master.cpp.o" "gcc" "src/ahb/CMakeFiles/ahbp_ahb.dir/master.cpp.o.d"
  "/root/repo/src/ahb/monitor.cpp" "src/ahb/CMakeFiles/ahbp_ahb.dir/monitor.cpp.o" "gcc" "src/ahb/CMakeFiles/ahbp_ahb.dir/monitor.cpp.o.d"
  "/root/repo/src/ahb/mux.cpp" "src/ahb/CMakeFiles/ahbp_ahb.dir/mux.cpp.o" "gcc" "src/ahb/CMakeFiles/ahbp_ahb.dir/mux.cpp.o.d"
  "/root/repo/src/ahb/slave.cpp" "src/ahb/CMakeFiles/ahbp_ahb.dir/slave.cpp.o" "gcc" "src/ahb/CMakeFiles/ahbp_ahb.dir/slave.cpp.o.d"
  "/root/repo/src/ahb/trace.cpp" "src/ahb/CMakeFiles/ahbp_ahb.dir/trace.cpp.o" "gcc" "src/ahb/CMakeFiles/ahbp_ahb.dir/trace.cpp.o.d"
  "/root/repo/src/ahb/types.cpp" "src/ahb/CMakeFiles/ahbp_ahb.dir/types.cpp.o" "gcc" "src/ahb/CMakeFiles/ahbp_ahb.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ahbp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
