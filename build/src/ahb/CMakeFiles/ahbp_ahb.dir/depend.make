# Empty dependencies file for ahbp_ahb.
# This may be replaced when dependencies are built.
