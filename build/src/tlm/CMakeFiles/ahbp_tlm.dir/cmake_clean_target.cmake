file(REMOVE_RECURSE
  "libahbp_tlm.a"
)
