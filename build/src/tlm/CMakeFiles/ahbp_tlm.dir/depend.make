# Empty dependencies file for ahbp_tlm.
# This may be replaced when dependencies are built.
