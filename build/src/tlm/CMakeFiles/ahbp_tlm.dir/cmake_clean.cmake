file(REMOVE_RECURSE
  "CMakeFiles/ahbp_tlm.dir/multilayer.cpp.o"
  "CMakeFiles/ahbp_tlm.dir/multilayer.cpp.o.d"
  "CMakeFiles/ahbp_tlm.dir/tlm.cpp.o"
  "CMakeFiles/ahbp_tlm.dir/tlm.cpp.o.d"
  "libahbp_tlm.a"
  "libahbp_tlm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahbp_tlm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
