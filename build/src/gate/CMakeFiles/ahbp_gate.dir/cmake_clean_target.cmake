file(REMOVE_RECURSE
  "libahbp_gate.a"
)
