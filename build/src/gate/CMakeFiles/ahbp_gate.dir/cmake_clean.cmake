file(REMOVE_RECURSE
  "CMakeFiles/ahbp_gate.dir/area.cpp.o"
  "CMakeFiles/ahbp_gate.dir/area.cpp.o.d"
  "CMakeFiles/ahbp_gate.dir/blif.cpp.o"
  "CMakeFiles/ahbp_gate.dir/blif.cpp.o.d"
  "CMakeFiles/ahbp_gate.dir/gatesim.cpp.o"
  "CMakeFiles/ahbp_gate.dir/gatesim.cpp.o.d"
  "CMakeFiles/ahbp_gate.dir/netlist.cpp.o"
  "CMakeFiles/ahbp_gate.dir/netlist.cpp.o.d"
  "CMakeFiles/ahbp_gate.dir/synth.cpp.o"
  "CMakeFiles/ahbp_gate.dir/synth.cpp.o.d"
  "libahbp_gate.a"
  "libahbp_gate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahbp_gate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
