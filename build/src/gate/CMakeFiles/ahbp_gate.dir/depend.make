# Empty dependencies file for ahbp_gate.
# This may be replaced when dependencies are built.
