file(REMOVE_RECURSE
  "../examples/characterize_ip"
  "../examples/characterize_ip.pdb"
  "CMakeFiles/characterize_ip.dir/characterize_ip.cpp.o"
  "CMakeFiles/characterize_ip.dir/characterize_ip.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/characterize_ip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
