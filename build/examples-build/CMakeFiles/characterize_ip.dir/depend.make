# Empty dependencies file for characterize_ip.
# This may be replaced when dependencies are built.
