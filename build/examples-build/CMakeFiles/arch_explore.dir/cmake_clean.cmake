file(REMOVE_RECURSE
  "../examples/arch_explore"
  "../examples/arch_explore.pdb"
  "CMakeFiles/arch_explore.dir/arch_explore.cpp.o"
  "CMakeFiles/arch_explore.dir/arch_explore.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arch_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
