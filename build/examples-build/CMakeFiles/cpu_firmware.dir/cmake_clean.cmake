file(REMOVE_RECURSE
  "../examples/cpu_firmware"
  "../examples/cpu_firmware.pdb"
  "CMakeFiles/cpu_firmware.dir/cpu_firmware.cpp.o"
  "CMakeFiles/cpu_firmware.dir/cpu_firmware.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpu_firmware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
