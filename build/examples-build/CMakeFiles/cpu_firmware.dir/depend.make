# Empty dependencies file for cpu_firmware.
# This may be replaced when dependencies are built.
