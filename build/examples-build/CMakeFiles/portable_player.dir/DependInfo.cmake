
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/portable_player.cpp" "examples-build/CMakeFiles/portable_player.dir/portable_player.cpp.o" "gcc" "examples-build/CMakeFiles/portable_player.dir/portable_player.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/power/CMakeFiles/ahbp_power.dir/DependInfo.cmake"
  "/root/repo/build/src/charlib/CMakeFiles/ahbp_charlib.dir/DependInfo.cmake"
  "/root/repo/build/src/ahb/CMakeFiles/ahbp_ahb.dir/DependInfo.cmake"
  "/root/repo/build/src/gate/CMakeFiles/ahbp_gate.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ahbp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
