file(REMOVE_RECURSE
  "../examples/portable_player"
  "../examples/portable_player.pdb"
  "CMakeFiles/portable_player.dir/portable_player.cpp.o"
  "CMakeFiles/portable_player.dir/portable_player.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/portable_player.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
