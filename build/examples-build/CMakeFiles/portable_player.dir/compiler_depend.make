# Empty compiler generated dependencies file for portable_player.
# This may be replaced when dependencies are built.
