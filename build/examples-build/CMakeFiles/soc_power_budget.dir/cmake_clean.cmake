file(REMOVE_RECURSE
  "../examples/soc_power_budget"
  "../examples/soc_power_budget.pdb"
  "CMakeFiles/soc_power_budget.dir/soc_power_budget.cpp.o"
  "CMakeFiles/soc_power_budget.dir/soc_power_budget.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_power_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
