# Empty compiler generated dependencies file for soc_power_budget.
# This may be replaced when dependencies are built.
