# Empty dependencies file for test_power_fsm_properties.
# This may be replaced when dependencies are built.
