file(REMOVE_RECURSE
  "CMakeFiles/test_power_fsm_properties.dir/power/test_fsm_properties.cpp.o"
  "CMakeFiles/test_power_fsm_properties.dir/power/test_fsm_properties.cpp.o.d"
  "test_power_fsm_properties"
  "test_power_fsm_properties.pdb"
  "test_power_fsm_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_power_fsm_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
