# Empty compiler generated dependencies file for test_apb_uart.
# This may be replaced when dependencies are built.
