file(REMOVE_RECURSE
  "CMakeFiles/test_apb_uart.dir/apb/test_uart.cpp.o"
  "CMakeFiles/test_apb_uart.dir/apb/test_uart.cpp.o.d"
  "test_apb_uart"
  "test_apb_uart.pdb"
  "test_apb_uart[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apb_uart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
