file(REMOVE_RECURSE
  "CMakeFiles/test_ahb_bus.dir/ahb/test_bus.cpp.o"
  "CMakeFiles/test_ahb_bus.dir/ahb/test_bus.cpp.o.d"
  "test_ahb_bus"
  "test_ahb_bus.pdb"
  "test_ahb_bus[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ahb_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
