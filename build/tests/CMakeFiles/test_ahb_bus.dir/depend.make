# Empty dependencies file for test_ahb_bus.
# This may be replaced when dependencies are built.
