file(REMOVE_RECURSE
  "CMakeFiles/test_gate_blif.dir/gate/test_blif.cpp.o"
  "CMakeFiles/test_gate_blif.dir/gate/test_blif.cpp.o.d"
  "test_gate_blif"
  "test_gate_blif.pdb"
  "test_gate_blif[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gate_blif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
