# Empty dependencies file for test_gate_blif.
# This may be replaced when dependencies are built.
