# Empty dependencies file for test_gate_netlist.
# This may be replaced when dependencies are built.
