file(REMOVE_RECURSE
  "CMakeFiles/test_gate_netlist.dir/gate/test_netlist.cpp.o"
  "CMakeFiles/test_gate_netlist.dir/gate/test_netlist.cpp.o.d"
  "test_gate_netlist"
  "test_gate_netlist.pdb"
  "test_gate_netlist[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gate_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
