file(REMOVE_RECURSE
  "CMakeFiles/test_power_cosim.dir/power/test_cosim.cpp.o"
  "CMakeFiles/test_power_cosim.dir/power/test_cosim.cpp.o.d"
  "test_power_cosim"
  "test_power_cosim.pdb"
  "test_power_cosim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_power_cosim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
