# Empty dependencies file for test_power_cosim.
# This may be replaced when dependencies are built.
