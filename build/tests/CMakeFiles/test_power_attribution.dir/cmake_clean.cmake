file(REMOVE_RECURSE
  "CMakeFiles/test_power_attribution.dir/power/test_attribution.cpp.o"
  "CMakeFiles/test_power_attribution.dir/power/test_attribution.cpp.o.d"
  "test_power_attribution"
  "test_power_attribution.pdb"
  "test_power_attribution[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_power_attribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
