# Empty dependencies file for test_power_attribution.
# This may be replaced when dependencies are built.
