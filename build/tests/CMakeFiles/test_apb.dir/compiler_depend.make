# Empty compiler generated dependencies file for test_apb.
# This may be replaced when dependencies are built.
