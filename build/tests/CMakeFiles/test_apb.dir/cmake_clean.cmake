file(REMOVE_RECURSE
  "CMakeFiles/test_apb.dir/apb/test_apb.cpp.o"
  "CMakeFiles/test_apb.dir/apb/test_apb.cpp.o.d"
  "test_apb"
  "test_apb.pdb"
  "test_apb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
