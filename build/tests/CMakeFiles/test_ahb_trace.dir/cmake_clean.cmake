file(REMOVE_RECURSE
  "CMakeFiles/test_ahb_trace.dir/ahb/test_trace.cpp.o"
  "CMakeFiles/test_ahb_trace.dir/ahb/test_trace.cpp.o.d"
  "test_ahb_trace"
  "test_ahb_trace.pdb"
  "test_ahb_trace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ahb_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
