file(REMOVE_RECURSE
  "CMakeFiles/test_power_governor.dir/power/test_governor.cpp.o"
  "CMakeFiles/test_power_governor.dir/power/test_governor.cpp.o.d"
  "test_power_governor"
  "test_power_governor.pdb"
  "test_power_governor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_power_governor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
