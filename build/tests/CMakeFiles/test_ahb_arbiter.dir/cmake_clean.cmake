file(REMOVE_RECURSE
  "CMakeFiles/test_ahb_arbiter.dir/ahb/test_arbiter.cpp.o"
  "CMakeFiles/test_ahb_arbiter.dir/ahb/test_arbiter.cpp.o.d"
  "test_ahb_arbiter"
  "test_ahb_arbiter.pdb"
  "test_ahb_arbiter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ahb_arbiter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
