# Empty dependencies file for test_charlib_table.
# This may be replaced when dependencies are built.
