file(REMOVE_RECURSE
  "CMakeFiles/test_charlib_table.dir/charlib/test_table.cpp.o"
  "CMakeFiles/test_charlib_table.dir/charlib/test_table.cpp.o.d"
  "test_charlib_table"
  "test_charlib_table.pdb"
  "test_charlib_table[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_charlib_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
