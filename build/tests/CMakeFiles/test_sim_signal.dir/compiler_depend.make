# Empty compiler generated dependencies file for test_sim_signal.
# This may be replaced when dependencies are built.
