file(REMOVE_RECURSE
  "CMakeFiles/test_sim_signal.dir/sim/test_signal.cpp.o"
  "CMakeFiles/test_sim_signal.dir/sim/test_signal.cpp.o.d"
  "test_sim_signal"
  "test_sim_signal.pdb"
  "test_sim_signal[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_signal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
