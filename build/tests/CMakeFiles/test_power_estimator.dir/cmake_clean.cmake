file(REMOVE_RECURSE
  "CMakeFiles/test_power_estimator.dir/power/test_estimator.cpp.o"
  "CMakeFiles/test_power_estimator.dir/power/test_estimator.cpp.o.d"
  "test_power_estimator"
  "test_power_estimator.pdb"
  "test_power_estimator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_power_estimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
