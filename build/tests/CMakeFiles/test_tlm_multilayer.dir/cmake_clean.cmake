file(REMOVE_RECURSE
  "CMakeFiles/test_tlm_multilayer.dir/tlm/test_multilayer.cpp.o"
  "CMakeFiles/test_tlm_multilayer.dir/tlm/test_multilayer.cpp.o.d"
  "test_tlm_multilayer"
  "test_tlm_multilayer.pdb"
  "test_tlm_multilayer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tlm_multilayer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
