# Empty dependencies file for test_tlm_multilayer.
# This may be replaced when dependencies are built.
