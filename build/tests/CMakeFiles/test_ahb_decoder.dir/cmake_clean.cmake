file(REMOVE_RECURSE
  "CMakeFiles/test_ahb_decoder.dir/ahb/test_decoder.cpp.o"
  "CMakeFiles/test_ahb_decoder.dir/ahb/test_decoder.cpp.o.d"
  "test_ahb_decoder"
  "test_ahb_decoder.pdb"
  "test_ahb_decoder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ahb_decoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
