file(REMOVE_RECURSE
  "CMakeFiles/test_sim_vcd.dir/sim/test_vcd.cpp.o"
  "CMakeFiles/test_sim_vcd.dir/sim/test_vcd.cpp.o.d"
  "test_sim_vcd"
  "test_sim_vcd.pdb"
  "test_sim_vcd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_vcd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
