file(REMOVE_RECURSE
  "CMakeFiles/test_power_report.dir/power/test_report.cpp.o"
  "CMakeFiles/test_power_report.dir/power/test_report.cpp.o.d"
  "test_power_report"
  "test_power_report.pdb"
  "test_power_report[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_power_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
