# Empty compiler generated dependencies file for test_gate_gatesim.
# This may be replaced when dependencies are built.
