file(REMOVE_RECURSE
  "CMakeFiles/test_gate_gatesim.dir/gate/test_gatesim.cpp.o"
  "CMakeFiles/test_gate_gatesim.dir/gate/test_gatesim.cpp.o.d"
  "test_gate_gatesim"
  "test_gate_gatesim.pdb"
  "test_gate_gatesim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gate_gatesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
