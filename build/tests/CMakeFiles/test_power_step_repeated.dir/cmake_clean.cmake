file(REMOVE_RECURSE
  "CMakeFiles/test_power_step_repeated.dir/power/test_step_repeated.cpp.o"
  "CMakeFiles/test_power_step_repeated.dir/power/test_step_repeated.cpp.o.d"
  "test_power_step_repeated"
  "test_power_step_repeated.pdb"
  "test_power_step_repeated[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_power_step_repeated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
