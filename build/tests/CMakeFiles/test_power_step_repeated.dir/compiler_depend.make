# Empty compiler generated dependencies file for test_power_step_repeated.
# This may be replaced when dependencies are built.
