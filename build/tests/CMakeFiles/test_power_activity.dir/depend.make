# Empty dependencies file for test_power_activity.
# This may be replaced when dependencies are built.
