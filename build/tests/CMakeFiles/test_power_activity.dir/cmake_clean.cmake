file(REMOVE_RECURSE
  "CMakeFiles/test_power_activity.dir/power/test_activity.cpp.o"
  "CMakeFiles/test_power_activity.dir/power/test_activity.cpp.o.d"
  "test_power_activity"
  "test_power_activity.pdb"
  "test_power_activity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_power_activity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
