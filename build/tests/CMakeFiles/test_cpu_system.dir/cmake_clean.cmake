file(REMOVE_RECURSE
  "CMakeFiles/test_cpu_system.dir/cpu/test_system.cpp.o"
  "CMakeFiles/test_cpu_system.dir/cpu/test_system.cpp.o.d"
  "test_cpu_system"
  "test_cpu_system.pdb"
  "test_cpu_system[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpu_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
