# Empty dependencies file for test_ahb_faults.
# This may be replaced when dependencies are built.
