file(REMOVE_RECURSE
  "CMakeFiles/test_ahb_faults.dir/ahb/test_faults.cpp.o"
  "CMakeFiles/test_ahb_faults.dir/ahb/test_faults.cpp.o.d"
  "test_ahb_faults"
  "test_ahb_faults.pdb"
  "test_ahb_faults[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ahb_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
