file(REMOVE_RECURSE
  "CMakeFiles/test_gate_synth.dir/gate/test_synth.cpp.o"
  "CMakeFiles/test_gate_synth.dir/gate/test_synth.cpp.o.d"
  "test_gate_synth"
  "test_gate_synth.pdb"
  "test_gate_synth[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gate_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
