# Empty compiler generated dependencies file for test_sim_kernel_stress.
# This may be replaced when dependencies are built.
