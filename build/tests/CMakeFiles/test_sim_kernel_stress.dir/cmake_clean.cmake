file(REMOVE_RECURSE
  "CMakeFiles/test_sim_kernel_stress.dir/sim/test_kernel_stress.cpp.o"
  "CMakeFiles/test_sim_kernel_stress.dir/sim/test_kernel_stress.cpp.o.d"
  "test_sim_kernel_stress"
  "test_sim_kernel_stress.pdb"
  "test_sim_kernel_stress[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_kernel_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
