file(REMOVE_RECURSE
  "CMakeFiles/test_charlib_characterize.dir/charlib/test_characterize.cpp.o"
  "CMakeFiles/test_charlib_characterize.dir/charlib/test_characterize.cpp.o.d"
  "test_charlib_characterize"
  "test_charlib_characterize.pdb"
  "test_charlib_characterize[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_charlib_characterize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
