# Empty dependencies file for test_charlib_characterize.
# This may be replaced when dependencies are built.
