file(REMOVE_RECURSE
  "CMakeFiles/test_ahb_traffic.dir/ahb/test_traffic.cpp.o"
  "CMakeFiles/test_ahb_traffic.dir/ahb/test_traffic.cpp.o.d"
  "test_ahb_traffic"
  "test_ahb_traffic.pdb"
  "test_ahb_traffic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ahb_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
