# Empty dependencies file for test_ahb_traffic.
# This may be replaced when dependencies are built.
