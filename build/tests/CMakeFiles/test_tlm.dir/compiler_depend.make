# Empty compiler generated dependencies file for test_tlm.
# This may be replaced when dependencies are built.
