file(REMOVE_RECURSE
  "CMakeFiles/test_ahb_monitor.dir/ahb/test_monitor.cpp.o"
  "CMakeFiles/test_ahb_monitor.dir/ahb/test_monitor.cpp.o.d"
  "test_ahb_monitor"
  "test_ahb_monitor.pdb"
  "test_ahb_monitor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ahb_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
