# Empty compiler generated dependencies file for test_ahb_monitor.
# This may be replaced when dependencies are built.
