file(REMOVE_RECURSE
  "CMakeFiles/test_sim_thread.dir/sim/test_thread.cpp.o"
  "CMakeFiles/test_sim_thread.dir/sim/test_thread.cpp.o.d"
  "test_sim_thread"
  "test_sim_thread.pdb"
  "test_sim_thread[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_thread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
