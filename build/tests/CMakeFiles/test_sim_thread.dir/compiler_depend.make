# Empty compiler generated dependencies file for test_sim_thread.
# This may be replaced when dependencies are built.
