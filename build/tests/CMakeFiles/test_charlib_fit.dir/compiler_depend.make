# Empty compiler generated dependencies file for test_charlib_fit.
# This may be replaced when dependencies are built.
