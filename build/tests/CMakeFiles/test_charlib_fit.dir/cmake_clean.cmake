file(REMOVE_RECURSE
  "CMakeFiles/test_charlib_fit.dir/charlib/test_fit.cpp.o"
  "CMakeFiles/test_charlib_fit.dir/charlib/test_fit.cpp.o.d"
  "test_charlib_fit"
  "test_charlib_fit.pdb"
  "test_charlib_fit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_charlib_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
