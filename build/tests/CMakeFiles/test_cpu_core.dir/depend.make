# Empty dependencies file for test_cpu_core.
# This may be replaced when dependencies are built.
