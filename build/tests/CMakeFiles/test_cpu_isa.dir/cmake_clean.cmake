file(REMOVE_RECURSE
  "CMakeFiles/test_cpu_isa.dir/cpu/test_isa.cpp.o"
  "CMakeFiles/test_cpu_isa.dir/cpu/test_isa.cpp.o.d"
  "test_cpu_isa"
  "test_cpu_isa.pdb"
  "test_cpu_isa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpu_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
