# Empty compiler generated dependencies file for test_cpu_isa.
# This may be replaced when dependencies are built.
