file(REMOVE_RECURSE
  "CMakeFiles/test_power_fsm.dir/power/test_power_fsm.cpp.o"
  "CMakeFiles/test_power_fsm.dir/power/test_power_fsm.cpp.o.d"
  "test_power_fsm"
  "test_power_fsm.pdb"
  "test_power_fsm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_power_fsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
