file(REMOVE_RECURSE
  "CMakeFiles/test_ahb_burst.dir/ahb/test_burst.cpp.o"
  "CMakeFiles/test_ahb_burst.dir/ahb/test_burst.cpp.o.d"
  "test_ahb_burst"
  "test_ahb_burst.pdb"
  "test_ahb_burst[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ahb_burst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
