# Empty compiler generated dependencies file for test_ahb_burst.
# This may be replaced when dependencies are built.
