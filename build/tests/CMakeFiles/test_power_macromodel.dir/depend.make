# Empty dependencies file for test_power_macromodel.
# This may be replaced when dependencies are built.
