file(REMOVE_RECURSE
  "CMakeFiles/test_power_macromodel.dir/power/test_macromodel.cpp.o"
  "CMakeFiles/test_power_macromodel.dir/power/test_macromodel.cpp.o.d"
  "test_power_macromodel"
  "test_power_macromodel.pdb"
  "test_power_macromodel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_power_macromodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
