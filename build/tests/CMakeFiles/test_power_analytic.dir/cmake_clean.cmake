file(REMOVE_RECURSE
  "CMakeFiles/test_power_analytic.dir/power/test_analytic.cpp.o"
  "CMakeFiles/test_power_analytic.dir/power/test_analytic.cpp.o.d"
  "test_power_analytic"
  "test_power_analytic.pdb"
  "test_power_analytic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_power_analytic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
