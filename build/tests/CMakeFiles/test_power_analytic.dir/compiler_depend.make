# Empty compiler generated dependencies file for test_power_analytic.
# This may be replaced when dependencies are built.
