file(REMOVE_RECURSE
  "CMakeFiles/test_gate_area.dir/gate/test_area.cpp.o"
  "CMakeFiles/test_gate_area.dir/gate/test_area.cpp.o.d"
  "test_gate_area"
  "test_gate_area.pdb"
  "test_gate_area[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gate_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
