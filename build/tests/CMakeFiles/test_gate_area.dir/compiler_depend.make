# Empty compiler generated dependencies file for test_gate_area.
# This may be replaced when dependencies are built.
