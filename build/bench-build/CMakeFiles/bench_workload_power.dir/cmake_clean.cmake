file(REMOVE_RECURSE
  "../bench/bench_workload_power"
  "../bench/bench_workload_power.pdb"
  "CMakeFiles/bench_workload_power.dir/bench_workload_power.cpp.o"
  "CMakeFiles/bench_workload_power.dir/bench_workload_power.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_workload_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
