# Empty compiler generated dependencies file for bench_workload_power.
# This may be replaced when dependencies are built.
