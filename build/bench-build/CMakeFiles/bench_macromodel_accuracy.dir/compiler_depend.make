# Empty compiler generated dependencies file for bench_macromodel_accuracy.
# This may be replaced when dependencies are built.
