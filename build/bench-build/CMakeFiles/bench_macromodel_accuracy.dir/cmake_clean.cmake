file(REMOVE_RECURSE
  "../bench/bench_macromodel_accuracy"
  "../bench/bench_macromodel_accuracy.pdb"
  "CMakeFiles/bench_macromodel_accuracy.dir/bench_macromodel_accuracy.cpp.o"
  "CMakeFiles/bench_macromodel_accuracy.dir/bench_macromodel_accuracy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_macromodel_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
