# Empty compiler generated dependencies file for bench_fig3_total_power.
# This may be replaced when dependencies are built.
