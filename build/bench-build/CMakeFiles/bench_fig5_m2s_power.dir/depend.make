# Empty dependencies file for bench_fig5_m2s_power.
# This may be replaced when dependencies are built.
