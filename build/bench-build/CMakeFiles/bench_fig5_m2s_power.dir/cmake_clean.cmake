file(REMOVE_RECURSE
  "../bench/bench_fig5_m2s_power"
  "../bench/bench_fig5_m2s_power.pdb"
  "CMakeFiles/bench_fig5_m2s_power.dir/bench_fig5_m2s_power.cpp.o"
  "CMakeFiles/bench_fig5_m2s_power.dir/bench_fig5_m2s_power.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_m2s_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
