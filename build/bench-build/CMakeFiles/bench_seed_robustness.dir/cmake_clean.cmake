file(REMOVE_RECURSE
  "../bench/bench_seed_robustness"
  "../bench/bench_seed_robustness.pdb"
  "CMakeFiles/bench_seed_robustness.dir/bench_seed_robustness.cpp.o"
  "CMakeFiles/bench_seed_robustness.dir/bench_seed_robustness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_seed_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
