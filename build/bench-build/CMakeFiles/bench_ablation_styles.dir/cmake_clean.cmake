file(REMOVE_RECURSE
  "../bench/bench_ablation_styles"
  "../bench/bench_ablation_styles.pdb"
  "CMakeFiles/bench_ablation_styles.dir/bench_ablation_styles.cpp.o"
  "CMakeFiles/bench_ablation_styles.dir/bench_ablation_styles.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_styles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
