file(REMOVE_RECURSE
  "../bench/bench_ablation_abstraction"
  "../bench/bench_ablation_abstraction.pdb"
  "CMakeFiles/bench_ablation_abstraction.dir/bench_ablation_abstraction.cpp.o"
  "CMakeFiles/bench_ablation_abstraction.dir/bench_ablation_abstraction.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_abstraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
