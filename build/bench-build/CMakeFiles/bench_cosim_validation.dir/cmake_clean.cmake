file(REMOVE_RECURSE
  "../bench/bench_cosim_validation"
  "../bench/bench_cosim_validation.pdb"
  "CMakeFiles/bench_cosim_validation.dir/bench_cosim_validation.cpp.o"
  "CMakeFiles/bench_cosim_validation.dir/bench_cosim_validation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cosim_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
