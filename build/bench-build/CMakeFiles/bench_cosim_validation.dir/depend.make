# Empty dependencies file for bench_cosim_validation.
# This may be replaced when dependencies are built.
