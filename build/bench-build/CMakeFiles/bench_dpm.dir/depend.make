# Empty dependencies file for bench_dpm.
# This may be replaced when dependencies are built.
