file(REMOVE_RECURSE
  "../bench/bench_dpm"
  "../bench/bench_dpm.pdb"
  "CMakeFiles/bench_dpm.dir/bench_dpm.cpp.o"
  "CMakeFiles/bench_dpm.dir/bench_dpm.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dpm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
