file(REMOVE_RECURSE
  "../bench/bench_param_sweep"
  "../bench/bench_param_sweep.pdb"
  "CMakeFiles/bench_param_sweep.dir/bench_param_sweep.cpp.o"
  "CMakeFiles/bench_param_sweep.dir/bench_param_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_param_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
