# Empty dependencies file for bench_fig4_arbiter_power.
# This may be replaced when dependencies are built.
