# Empty dependencies file for ahbpower_cli.
# This may be replaced when dependencies are built.
