file(REMOVE_RECURSE
  "../tools/ahbpower_cli"
  "../tools/ahbpower_cli.pdb"
  "CMakeFiles/ahbpower_cli.dir/ahbpower_cli.cpp.o"
  "CMakeFiles/ahbpower_cli.dir/ahbpower_cli.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahbpower_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
