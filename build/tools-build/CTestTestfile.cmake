# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools-build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_smoke "/root/repo/build/tools/ahbpower_cli" "--cycles" "2000" "--table" "--breakdown" "--attribution" "--quiet")
set_tests_properties(cli_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_full "/root/repo/build/tools/ahbpower_cli" "--cycles" "1000" "--masters" "3" "--slaves" "4" "--waits" "1" "--policy" "rr" "--table" "--breakdown" "--activity")
set_tests_properties(cli_full PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bad_usage "/root/repo/build/tools/ahbpower_cli" "--bogus")
set_tests_properties(cli_bad_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
