// Reproduces Figure 6 of the paper: the energy contribution of the AHB
// sub-blocks (M2S, DEC, ARB, S2M) over the full 50 us testbench run.
// The paper's qualitative picture: M2S dominates, the arbiter is tiny.

#include <cstdio>

#include "common.hpp"
#include "power/report.hpp"

int main() {
  using namespace ahbp;

  bench::PaperSystem sys;
  std::puts("=== Figure 6: AHB sub-blocks power contribution (50 us) ===\n");

  sys.run(sim::SimTime::us(50));

  const power::BlockEnergy& e = sys.est->block_totals();
  std::fputs(power::format_block_breakdown(e).c_str(), stdout);
  std::printf("\nTotal: %s over %llu cycles\n",
              power::format_energy(e.total()).c_str(),
              static_cast<unsigned long long>(sys.est->fsm().cycles()));

  const bool ordering_ok = e.m2s > e.s2m && e.m2s > e.dec && e.m2s > e.arb &&
                           e.arb < e.m2s / 10;
  if (!ordering_ok) {
    std::puts("SHAPE CHECK FAILED: expected M2S dominant and ARB marginal");
    return 1;
  }
  std::puts("SHAPE CHECK PASSED: M2S > {S2M, DEC} >> ARB, as in the paper.");
  return 0;
}
