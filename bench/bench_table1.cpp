// Reproduces Table 1 of the paper: per-instruction average and total
// energy over a 50 us simulation of the AHB testbench at 100 MHz, plus
// the headline split between data-transfer and arbitration energy.
//
// Paper reference (Table 1):
//   IDLE_HO_IDLE_HO  14.7 pJ   11.49 %
//   IDLE_HO_WRITE    16.7 pJ    0.06 %
//   READ_WRITE       19.8 pJ   45.12 %
//   READ_IDLE_HO     22.4 pJ    1.14 %
//   WRITE_READ       14.7 pJ   42.19 %
//   => ~87.3 % data transfer without handover, ~12.7 % arbitration.

#include <cstdio>

#include "common.hpp"
#include "power/report.hpp"

int main() {
  using namespace ahbp;

  bench::PaperSystem sys;
  std::puts("=== Table 1: instructions energy analysis ===");
  std::puts("testbench: 2 traffic masters (WRITE-READ sequences + IDLE),");
  std::puts("           1 default master, 3 slaves, 100 MHz, 50 us\n");

  sys.run(sim::SimTime::us(50));

  const power::PowerFsm& fsm = sys.est->fsm();
  std::fputs(power::format_instruction_table(fsm).c_str(), stdout);
  std::putchar('\n');
  std::fputs(power::format_activity_report(fsm.activity()).c_str(), stdout);

  const double data = power::data_transfer_share(fsm);
  const double arb = power::arbitration_share(fsm);
  std::printf("\nData-transfer (no handover) energy share: %6.2f %%  (paper: 87.3 %%)\n",
              100.0 * data);
  std::printf("Arbitration-related energy share:         %6.2f %%  (paper: 12.7 %%)\n",
              100.0 * arb);
  std::printf("Other (pure idle) energy share:           %6.2f %%\n",
              100.0 * (1.0 - data - arb));

  // Sanity for automated runs: the paper's qualitative claim must hold.
  if (data < 2 * arb) {
    std::puts("SHAPE CHECK FAILED: data path does not dominate arbitration");
    return 1;
  }
  std::puts("\nSHAPE CHECK PASSED: optimization effort belongs on the AHB data-path.");
  return 0;
}
