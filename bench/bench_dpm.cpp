// Extension bench: dynamic power management (the run-time energy
// optimization the paper's Sec. 4 alludes to). Sweeps the governor's
// power budget and reports achieved mean power, throughput, and how
// often the budget was exceeded -- the power/performance trade-off curve
// a DPM designer would tune against.

#include <cstdio>
#include <memory>

#include "common.hpp"
#include "power/governor.hpp"
#include "power/report.hpp"

namespace {

using namespace ahbp;

struct DpmResult {
  double mean_power = 0.0;
  double peak_window_power = 0.0;
  std::uint64_t transfers = 0;
  std::uint64_t throttled_cycles = 0;
  std::uint64_t over_budget_windows = 0;
  std::uint64_t windows = 0;
};

DpmResult run_with_budget(double budget_watts) {
  bench::PaperSystem sys;
  std::unique_ptr<power::PowerGovernor> gov;
  if (budget_watts > 0) {
    gov = std::make_unique<power::PowerGovernor>(
        &sys.top, "gov", *sys.est,
        power::PowerGovernor::Config{.budget_watts = budget_watts,
                                     .window_cycles = 32});
    sys.m1.set_throttle(&gov->throttle());
    sys.m2.set_throttle(&gov->throttle());
  }
  sys.run(sim::SimTime::us(100));

  DpmResult r;
  r.mean_power = sys.est->total_energy() / sys.kernel.now().to_seconds();
  r.transfers = sys.m1.stats().writes + sys.m1.stats().reads +
                sys.m2.stats().writes + sys.m2.stats().reads;
  r.throttled_cycles =
      sys.m1.stats().throttled_cycles + sys.m2.stats().throttled_cycles;
  if (gov) {
    r.peak_window_power = gov->stats().peak_window_power;
    r.over_budget_windows = gov->stats().over_budget_windows;
    r.windows = gov->stats().windows;
  }
  return r;
}

}  // namespace

int main() {
  std::puts("=== Extension: dynamic power management (budget sweep) ===");
  std::puts("paper testbench + PowerGovernor, 100 us @ 100 MHz, 32-cycle windows\n");

  const DpmResult free_run = run_with_budget(-1.0);
  std::printf("%-12s %14s %12s %16s %14s\n", "budget", "mean power",
              "transfers", "throttled cyc", "over-budget");
  std::printf("%-12s %14s %12llu %16s %14s\n", "none",
              power::format_power(free_run.mean_power).c_str(),
              static_cast<unsigned long long>(free_run.transfers), "-", "-");

  for (const double budget : {2e-3, 1e-3, 0.5e-3, 0.3e-3, 0.15e-3}) {
    const DpmResult r = run_with_budget(budget);
    char ob[32];
    std::snprintf(ob, sizeof ob, "%llu/%llu",
                  static_cast<unsigned long long>(r.over_budget_windows),
                  static_cast<unsigned long long>(r.windows));
    std::printf("%-12s %14s %12llu %16llu %14s\n",
                power::format_power(budget).c_str(),
                power::format_power(r.mean_power).c_str(),
                static_cast<unsigned long long>(r.transfers),
                static_cast<unsigned long long>(r.throttled_cycles), ob);
  }

  std::puts("\ntighter budgets trade throughput for power: the governor holds");
  std::puts("mean power near the budget while the workload still progresses.");

  // Automated check: the tightest budget must reduce both power and
  // throughput relative to the free run.
  const DpmResult tight = run_with_budget(0.15e-3);
  if (tight.mean_power >= free_run.mean_power ||
      tight.transfers >= free_run.transfers) {
    std::puts("DPM CHECK FAILED");
    return 1;
  }
  std::puts("DPM CHECK PASSED.");
  return 0;
}
