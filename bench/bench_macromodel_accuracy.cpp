// Reproduces the paper's Sec. 5.1 validation step: each sub-block
// macromodel is checked against its gate-level reference structure (the
// role SIS played for the authors). Prints, per block, the least-squares
// fit quality and the closed-form model's error versus the gate level.
//
// --smoke shrinks the sample count so the bench-smoke ctest label can run
// the full table cheaply; columns and shapes are unchanged.

#include <cstdio>
#include <cstring>

#include "charlib/charlib.hpp"

int main(int argc, char** argv) {
  using namespace ahbp;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke]\n", argv[0]);
      return 2;
    }
  }
  const unsigned n_samples = smoke ? 200 : 2000;

  std::puts("=== Macromodel validation against gate level (SIS substitute) ===\n");

  // Decoder: the paper's closed form E_DEC(n_O, HD_IN).
  std::puts("--- one-hot address decoder ---");
  std::printf("%8s %10s %12s %14s %14s\n", "n_O", "fit R^2", "rel. error",
              "E_model", "E_gate");
  for (unsigned n : {2u, 4u, 8u, 16u}) {
    const auto r = charlib::characterize_decoder(n, n_samples, 1234);
    std::printf("%8u %10.4f %11.1f%% %13.3e %13.3e\n", n, r.fit.r_squared,
                100.0 * r.paper_model.mean_rel_error,
                r.paper_model.total_energy_model, r.paper_model.total_energy_ref);
  }

  // Mux: E_MUX(w, n, HD_IN, HD_SEL) -- default vs fitted coefficients.
  std::puts("\n--- n-to-1 multiplexer (default vs charlib-fitted coefficients) ---");
  std::printf("%6s %6s %10s %14s %14s\n", "w", "n", "fit R^2", "default err",
              "fitted err");
  struct Shape {
    unsigned w, n;
  };
  for (const auto [w, n] : {Shape{8, 2}, Shape{16, 3}, Shape{32, 2}, Shape{32, 4}}) {
    const auto r = charlib::characterize_mux(w, n, n_samples, 99);
    std::printf("%6u %6u %10.4f %13.1f%% %13.1f%%\n", w, n, r.fit.r_squared,
                100.0 * r.default_model.mean_rel_error,
                100.0 * r.fitted_model.mean_rel_error);
  }

  // Arbiter FSM model.
  std::puts("\n--- priority arbiter FSM ---");
  std::printf("%8s %10s %12s %14s %14s\n", "masters", "fit R^2", "rel. error",
              "E_model", "E_gate");
  for (unsigned n : {2u, 3u, 4u, 8u}) {
    const auto r = charlib::characterize_arbiter(n, n_samples, 555);
    std::printf("%8u %10.4f %11.1f%% %13.3e %13.3e\n", n, r.fit.r_squared,
                100.0 * r.fsm_model.mean_rel_error,
                r.fsm_model.total_energy_model, r.fsm_model.total_energy_ref);
  }

  std::puts("\nAll macromodels characterized from gate-level toggle counts.");
  return 0;
}
