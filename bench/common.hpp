#pragma once
// Shared testbench for the paper-reproduction benches: the exact topology
// of the paper's evaluation (Sec. 5) -- two traffic masters executing
// WRITE-READ non-interruptible sequences and IDLE commands, one simple
// default master, and three slaves on an AMBA AHB, clocked at 100 MHz.

#include <memory>
#include <string>
#include <utility>

#include "ahb/ahb.hpp"
#include "campaign/campaign.hpp"
#include "power/power.hpp"
#include "sim/sim.hpp"
#include "telemetry/telemetry.hpp"

namespace ahbp::bench {

/// The paper's system, with a power estimator attached.
struct PaperSystem {
  struct Options {
    ahb::ArbitrationPolicy policy = ahb::ArbitrationPolicy::kFixedPriority;
    unsigned wait_states = 0;
    sim::SimTime trace_window = sim::SimTime::zero();
    bool power_enabled = true;
    std::uint64_t seed1 = 101;
    std::uint64_t seed2 = 202;
    /// Windowed power sampling granularity (0 = telemetry off).
    std::uint64_t telemetry_window_cycles = 0;
    /// Reconstruct per-transaction spans with attributed energy.
    bool txn_trace = false;
    /// Hot-path metrics sink (nullptr = no metrics).
    telemetry::MetricsRegistry* metrics = nullptr;
  };

  PaperSystem() : PaperSystem(Options{}) {}

  explicit PaperSystem(Options opt)
      : top(nullptr, "top"),
        clk(&top, "clk", sim::SimTime::ns(10), 0.5, sim::SimTime::ns(10)),
        bus(&top, "ahb", clk, ahb::AhbBus::Config{.policy = opt.policy}),
        dm(&top, "default_master", bus),
        m1(&top, "m1", bus,
           {.addr_base = 0x0000, .addr_range = 0x1000, .seed = opt.seed1}),
        m2(&top, "m2", bus,
           {.addr_base = 0x1000, .addr_range = 0x1000, .seed = opt.seed2}),
        s1(&top, "s1", bus,
           {.base = 0x0000, .size = 0x1000, .wait_states = opt.wait_states}),
        s2(&top, "s2", bus,
           {.base = 0x1000, .size = 0x1000, .wait_states = opt.wait_states}),
        s3(&top, "s3", bus,
           {.base = 0x2000, .size = 0x1000, .wait_states = opt.wait_states}) {
    bus.finalize();
    if (opt.power_enabled) {
      est = std::make_unique<power::AhbPowerEstimator>(
          &top, "power", bus,
          power::AhbPowerEstimator::Config{
              .trace_window = opt.trace_window,
              .telemetry_window_cycles = opt.telemetry_window_cycles,
              .txn_trace = opt.txn_trace,
              .metrics = opt.metrics});
    }
  }

  /// Runs for the given simulated duration (100 MHz clock).
  void run(sim::SimTime t) { kernel.run(t); }

  sim::Kernel kernel;
  sim::Module top;
  sim::Clock clk;
  ahb::AhbBus bus;
  ahb::DefaultMaster dm;
  ahb::TrafficMaster m1, m2;
  ahb::MemorySlave s1, s2, s3;
  std::unique_ptr<power::AhbPowerEstimator> est;
};

/// Campaign spec over the paper testbench: builds a complete
/// PaperSystem (kernel included) on whatever thread executes the spec,
/// runs it for `duration`, and reports the estimator's totals. Seeds
/// live in `opt`, so the same spec is bit-identical on every rerun.
inline campaign::RunSpec paper_run_spec(std::string name, PaperSystem::Options opt,
                                        sim::SimTime duration) {
  return campaign::RunSpec{std::move(name), [opt, duration] {
                             PaperSystem sys(opt);
                             sys.run(duration);
                             campaign::PowerReport r;
                             r.total_energy = sys.est->total_energy();
                             r.blocks = sys.est->block_totals();
                             r.cycles = sys.est->fsm().cycles();
                             return r;
                           }};
}

}  // namespace ahbp::bench
