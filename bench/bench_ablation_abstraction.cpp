// Ablation over the modeling abstraction level -- the paper's speed
// argument quantified: cycle-accurate kernel simulation vs the
// transaction-level (function-call) model, same workload shape, same
// power FSM. Reports wall-clock speedup and the energy-per-cycle gap.

#include <chrono>
#include <cstdio>

#include "common.hpp"
#include "power/report.hpp"
#include "tlm/tlm.hpp"

namespace {

using namespace ahbp;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

}  // namespace

int main() {
  std::puts("=== Ablation: abstraction level (cycle-accurate vs TLM) ===\n");
  constexpr std::uint64_t kCycles = 100000;  // 1 ms of bus time @ 100 MHz

  // --- cycle-accurate ------------------------------------------------------
  double ca_ms = 0.0, ca_energy = 0.0;
  std::uint64_t ca_cycles = 0, ca_transfers = 0;
  {
    const auto t0 = Clock::now();
    bench::PaperSystem sys;
    sys.run(sim::SimTime::us(1000));
    ca_ms = ms_since(t0);
    ca_energy = sys.est->total_energy();
    ca_cycles = sys.est->fsm().cycles();
    ca_transfers = sys.m1.stats().writes + sys.m1.stats().reads +
                   sys.m2.stats().writes + sys.m2.stats().reads;
  }

  // --- transaction-level ----------------------------------------------------
  double tlm_ms = 0.0, tlm_energy = 0.0;
  std::uint64_t tlm_cycles = 0, tlm_transfers = 0;
  {
    const auto t0 = Clock::now();
    tlm::TlmBus bus(tlm::TlmBus::Config{.n_masters = 3});
    tlm::TlmMemory m1, m2, m3;
    bus.map(m1, 0x0000, 0x1000);
    bus.map(m2, 0x1000, 0x1000);
    bus.map(m3, 0x2000, 0x1000);
    tlm::TlmTrafficRunner r1(bus, 1,
                             {.addr_base = 0x0000, .addr_range = 0x1000, .seed = 101});
    tlm::TlmTrafficRunner r2(bus, 2,
                             {.addr_base = 0x1000, .addr_range = 0x1000, .seed = 202});
    // Interleave tenures in cycle-sized slices, mimicking arbitration.
    std::uint64_t next = 2000;
    while (bus.cycles() < kCycles) {
      r1.run_until(std::min<std::uint64_t>(next, kCycles));
      r2.run_until(std::min<std::uint64_t>(next + 2000, kCycles));
      next += 4000;
    }
    tlm_ms = ms_since(t0);
    tlm_energy = bus.total_energy();
    tlm_cycles = bus.cycles();
    tlm_transfers = bus.transfers();
  }

  const double ca_epc = ca_energy / static_cast<double>(ca_cycles);
  const double tlm_epc = tlm_energy / static_cast<double>(tlm_cycles);

  std::printf("%-18s %12s %12s %12s %14s\n", "model", "wall time", "cycles",
              "transfers", "energy/cycle");
  std::printf("%-18s %9.1f ms %12llu %12llu %14s\n", "cycle-accurate", ca_ms,
              static_cast<unsigned long long>(ca_cycles),
              static_cast<unsigned long long>(ca_transfers),
              power::format_energy(ca_epc).c_str());
  std::printf("%-18s %9.1f ms %12llu %12llu %14s\n", "transaction-level", tlm_ms,
              static_cast<unsigned long long>(tlm_cycles),
              static_cast<unsigned long long>(tlm_transfers),
              power::format_energy(tlm_epc).c_str());
  std::printf("\nspeedup: %.0fx   energy/cycle ratio (tlm/ca): %.2f\n",
              ca_ms / tlm_ms, tlm_epc / ca_epc);
  std::puts("\nthe paper's abstraction ladder, quantified: each level up trades");
  std::puts("signal-accurate activity for orders-of-magnitude simulation speed");
  std::puts("while the instruction-level energy stays in the same band.");

  const bool ok = ca_ms / tlm_ms > 5.0 && tlm_epc / ca_epc > 0.3 &&
                  tlm_epc / ca_epc < 3.0;
  if (!ok) {
    std::puts("ABSTRACTION CHECK FAILED");
    return 1;
  }
  std::puts("ABSTRACTION CHECK PASSED.");
  return 0;
}
