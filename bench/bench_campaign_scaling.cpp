// Campaign throughput scaling -- how fast the paper's sweep workload
// runs when fanned across cores.
//
// Workload: the Sec. 5 testbench swept over arbitration policy, slave
// wait states and traffic seeds (the Figs. 3-6 axes) -- dozens of
// independent 50 us simulations. The bench runs the identical spec list
// through campaign::Campaign at 1, 2, 4 and hardware_threads workers,
// reports simulated cycles/sec per thread count as JSON (collected into
// BENCH_*.json trajectories), and verifies the determinism contract:
// per-run energies must be bit-identical to the serial baseline.
//
//   bench_campaign_scaling [--smoke]
//
// --smoke shrinks the workload (8 runs x 5 us, 1 and 2 threads) for the
// ctest guard; the determinism check is identical. Exit code 1 on any
// parallel-vs-serial mismatch.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common.hpp"

namespace {

using namespace ahbp;

std::vector<campaign::RunSpec> paper_sweep(unsigned n_seeds, sim::SimTime dur) {
  std::vector<campaign::RunSpec> specs;
  for (const auto policy : {ahb::ArbitrationPolicy::kFixedPriority,
                            ahb::ArbitrationPolicy::kRoundRobin}) {
    for (const unsigned waits : {0u, 1u, 3u}) {
      for (unsigned s = 0; s < n_seeds; ++s) {
        bench::PaperSystem::Options opt;
        opt.policy = policy;
        opt.wait_states = waits;
        opt.seed1 = 101 + 1000 * s;
        opt.seed2 = 202 + 1000 * s;
        const std::string name =
            std::string(policy == ahb::ArbitrationPolicy::kFixedPriority ? "fixed"
                                                                         : "rr") +
            "/w" + std::to_string(waits) + "/s" + std::to_string(s);
        specs.push_back(bench::paper_run_spec(name, opt, dur));
      }
    }
  }
  return specs;
}

struct Point {
  unsigned threads = 0;
  double wall_s = 0.0;
  double cycles_per_sec = 0.0;
  double speedup = 1.0;
};

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const unsigned n_seeds = smoke ? 2u : 4u;  // 2*3*n_seeds runs total
  const sim::SimTime dur = smoke ? sim::SimTime::us(5) : sim::SimTime::us(50);

  const std::vector<campaign::RunSpec> specs = paper_sweep(n_seeds, dur);

  const unsigned hw = campaign::Campaign::hardware_threads();
  std::vector<unsigned> counts{1};
  for (unsigned t : {2u, 4u, hw}) {
    if (t > 1 && (smoke ? t <= 2 : true) &&
        std::find(counts.begin(), counts.end(), t) == counts.end()) {
      counts.push_back(t);
    }
  }

  std::vector<campaign::RunOutcome> baseline;
  std::vector<Point> points;
  bool deterministic = true;
  std::uint64_t cycles_total = 0;

  for (const unsigned t : counts) {
    const campaign::Campaign pool(campaign::Campaign::Config{.threads = t});
    const auto t0 = std::chrono::steady_clock::now();
    const auto outcomes = pool.run(specs);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    cycles_total = 0;
    for (const auto& o : outcomes) {
      if (!o.ok) {
        std::fprintf(stderr, "run %zu (%s) failed: %s\n", o.index, o.name.c_str(),
                     o.error.c_str());
        deterministic = false;
      }
      cycles_total += o.report.cycles;
    }

    if (t == 1) {
      baseline = outcomes;
    } else {
      // Determinism guard: same seeds => same joules, bit for bit,
      // regardless of worker count and completion order.
      for (std::size_t i = 0; i < outcomes.size(); ++i) {
        if (std::memcmp(&outcomes[i].report.total_energy,
                        &baseline[i].report.total_energy, sizeof(double)) != 0 ||
            outcomes[i].report.cycles != baseline[i].report.cycles ||
            outcomes[i].name != baseline[i].name) {
          std::fprintf(stderr,
                       "determinism violation at run %zu (%s): %.17g J @ %u "
                       "threads vs %.17g J serial\n",
                       i, outcomes[i].name.c_str(),
                       outcomes[i].report.total_energy, t,
                       baseline[i].report.total_energy);
          deterministic = false;
        }
      }
    }

    Point p;
    p.threads = t;
    p.wall_s = wall;
    p.cycles_per_sec = wall > 0.0 ? static_cast<double>(cycles_total) / wall : 0.0;
    p.speedup = points.empty() ? 1.0 : points.front().wall_s / wall;
    points.push_back(p);
  }

  // JSON summary on stdout for trajectory collection.
  std::printf("{\"bench\":\"campaign_scaling\",\"smoke\":%s,\"runs\":%zu,"
              "\"sim_cycles_total\":%llu,\"hardware_threads\":%u,"
              "\"deterministic\":%s,\"scaling\":[",
              smoke ? "true" : "false", specs.size(),
              static_cast<unsigned long long>(cycles_total), hw,
              deterministic ? "true" : "false");
  for (std::size_t i = 0; i < points.size(); ++i) {
    std::printf("%s{\"threads\":%u,\"wall_s\":%.6f,\"cycles_per_sec\":%.0f,"
                "\"speedup\":%.3f}",
                i == 0 ? "" : ",", points[i].threads, points[i].wall_s,
                points[i].cycles_per_sec, points[i].speedup);
  }
  std::printf("]}\n");

  if (!deterministic) return 1;
  return 0;
}
