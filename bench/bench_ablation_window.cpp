// Ablation: power-trace window size vs fidelity (design choice behind
// Figures 3-5). Small windows resolve individual bus tenures but are
// noisy; large windows converge to the average power. Sweeps the window
// and reports peak/mean ratio and point counts for the same 4 us run.

#include <cstdio>

#include "common.hpp"
#include "power/report.hpp"

int main() {
  using namespace ahbp;

  std::puts("=== Ablation: trace window size (Figs. 3-5 design choice) ===\n");
  std::printf("%12s %10s %14s %14s %12s\n", "window", "points", "mean power",
              "peak power", "peak/mean");

  for (const auto window : {sim::SimTime::ns(20), sim::SimTime::ns(50),
                            sim::SimTime::ns(100), sim::SimTime::ns(500),
                            sim::SimTime::us(1), sim::SimTime::us(4)}) {
    bench::PaperSystem sys({.trace_window = window});
    sys.run(sim::SimTime::us(4));
    sys.est->flush_trace();
    const power::PowerTrace& tr = *sys.est->trace();
    double peak = 0.0, mean = 0.0;
    for (const auto& p : tr.points()) {
      const double w = tr.power_total(p);
      peak = std::max(peak, w);
      mean += w;
    }
    mean /= static_cast<double>(tr.points().size());
    std::printf("%12s %10zu %14s %14s %11.2fx\n", window.to_string().c_str(),
                tr.points().size(), power::format_power(mean).c_str(),
                power::format_power(peak).c_str(), peak / mean);
  }

  std::puts("\nsmaller windows expose burst power (peak >> mean); the 100 ns");
  std::puts("window used for the figure benches balances noise and detail.");
  return 0;
}
