// Parametric-model sweeps (paper Sec. 5.1): the macromodels are functions
// of the IP parameters -- number of slaves for the decoder, width and
// input count for the mux. Sweeps each parameter with the closed form
// and with the gate-level reference side by side, demonstrating that the
// macromodels track the structures across the whole parameter space.

#include <cstdio>

#include "charlib/charlib.hpp"
#include "gate/gate.hpp"
#include "power/macromodel.hpp"

namespace {

using namespace ahbp;

/// Mean gate-level energy per random transition for a decoder.
double decoder_gate_mean(unsigned n_outputs, unsigned samples) {
  const auto r = charlib::characterize_decoder(n_outputs, samples, 77);
  return r.paper_model.total_energy_ref / static_cast<double>(samples);
}

double mux_gate_mean(unsigned width, unsigned n_inputs, unsigned samples) {
  const auto r = charlib::characterize_mux(width, n_inputs, samples, 78);
  return r.fitted_model.total_energy_ref / static_cast<double>(samples);
}

}  // namespace

int main() {
  const gate::Technology tech;
  std::puts("=== Parametric macromodel sweeps (E_DEC, E_MUX vs IP parameters) ===\n");

  std::puts("--- E_DEC vs number of slaves (HD_IN = 1 closed form; gate mean) ---");
  std::printf("%10s %8s %16s %18s\n", "n_slaves", "n_I", "E_DEC(HD=1)",
              "gate-level mean");
  for (unsigned n : {2u, 3u, 4u, 6u, 8u, 12u, 16u}) {
    power::DecoderModel m(n, tech);
    std::printf("%10u %8u %15.3e %17.3e\n", n, m.n_inputs(), m.energy(1u),
                decoder_gate_mean(n, 600));
  }

  std::puts("\n--- E_MUX vs data width (n = 3 inputs; HD_IN = w/2, one sel flip) ---");
  std::printf("%10s %16s %18s\n", "width", "E_MUX model", "gate-level mean");
  for (unsigned w : {4u, 8u, 16u, 32u}) {
    power::MuxModel m(w, 3, tech);
    std::printf("%10u %15.3e %17.3e\n", w, m.energy(w / 2, 1, w / 2),
                mux_gate_mean(w, 3, 600));
  }

  std::puts("\n--- E_MUX vs number of inputs (w = 16) ---");
  std::printf("%10s %16s %18s\n", "inputs", "E_MUX model", "gate-level mean");
  for (unsigned n : {2u, 3u, 4u, 8u}) {
    power::MuxModel m(16, n, tech);
    std::printf("%10u %15.3e %17.3e\n", n, m.energy(8, 1, 8),
                mux_gate_mean(16, n, 600));
  }

  std::puts("\n--- arbiter handover energy vs number of masters ---");
  std::printf("%10s %16s %16s\n", "masters", "E_handover", "E_idle");
  for (unsigned n : {2u, 3u, 4u, 8u, 16u}) {
    power::ArbiterFsmModel m(n, tech);
    std::printf("%10u %15.3e %15.3e\n", n, m.handover_energy(), m.idle_energy());
  }

  std::puts("\nmonotone growth along every parameter axis: the models are");
  std::puts("usable for early architecture exploration before RTL exists.");
  return 0;
}
