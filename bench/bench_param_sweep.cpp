// Parametric-model sweeps (paper Sec. 5.1): the macromodels are functions
// of the IP parameters -- number of slaves for the decoder, width and
// input count for the mux. Sweeps each parameter with the closed form
// and with the gate-level reference side by side, demonstrating that the
// macromodels track the structures across the whole parameter space.
//
// The gate-level reference points are independent characterizations, so
// they are fanned across cores with campaign::Campaign; the closed-form
// values are computed inline. Results print in sweep order regardless
// of which worker finished first.

#include <cstdio>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "charlib/charlib.hpp"
#include "gate/gate.hpp"
#include "power/macromodel.hpp"

namespace {

using namespace ahbp;

/// Spec wrapping one gate-level decoder characterization; the mean
/// energy per random transition lands in metrics["gate_mean"].
campaign::RunSpec decoder_spec(unsigned n_outputs, unsigned samples) {
  return {"dec/n" + std::to_string(n_outputs), [n_outputs, samples] {
            const auto r = charlib::characterize_decoder(n_outputs, samples, 77);
            campaign::PowerReport rep;
            rep.metrics["gate_mean"] =
                r.paper_model.total_energy_ref / static_cast<double>(samples);
            return rep;
          }};
}

campaign::RunSpec mux_spec(unsigned width, unsigned n_inputs, unsigned samples) {
  return {"mux/w" + std::to_string(width) + "/n" + std::to_string(n_inputs),
          [width, n_inputs, samples] {
            const auto r = charlib::characterize_mux(width, n_inputs, samples, 78);
            campaign::PowerReport rep;
            rep.metrics["gate_mean"] =
                r.fitted_model.total_energy_ref / static_cast<double>(samples);
            return rep;
          }};
}

double gate_mean(const campaign::RunOutcome& o) {
  return o.ok ? o.report.metrics.at("gate_mean") : -1.0;
}

}  // namespace

int main() {
  const gate::Technology tech;
  constexpr unsigned kSamples = 600;
  const std::vector<unsigned> dec_slaves{2, 3, 4, 6, 8, 12, 16};
  const std::vector<unsigned> mux_widths{4, 8, 16, 32};
  const std::vector<unsigned> mux_inputs{2, 3, 4, 8};

  // Fan every gate-level reference run across the machine; specs are
  // gathered back in submission order, so the tables below can index
  // straight into the outcome vector.
  std::vector<campaign::RunSpec> specs;
  for (unsigned n : dec_slaves) specs.push_back(decoder_spec(n, kSamples));
  for (unsigned w : mux_widths) specs.push_back(mux_spec(w, 3, kSamples));
  for (unsigned n : mux_inputs) specs.push_back(mux_spec(16, n, kSamples));

  const campaign::Campaign pool;
  const auto outcomes = pool.run(specs);
  std::size_t at = 0;

  std::puts("=== Parametric macromodel sweeps (E_DEC, E_MUX vs IP parameters) ===");
  std::printf("(gate-level references on %u threads)\n\n", pool.threads());

  std::puts("--- E_DEC vs number of slaves (HD_IN = 1 closed form; gate mean) ---");
  std::printf("%10s %8s %16s %18s\n", "n_slaves", "n_I", "E_DEC(HD=1)",
              "gate-level mean");
  for (unsigned n : dec_slaves) {
    power::DecoderModel m(n, tech);
    std::printf("%10u %8u %15.3e %17.3e\n", n, m.n_inputs(), m.energy(1u),
                gate_mean(outcomes[at++]));
  }

  std::puts("\n--- E_MUX vs data width (n = 3 inputs; HD_IN = w/2, one sel flip) ---");
  std::printf("%10s %16s %18s\n", "width", "E_MUX model", "gate-level mean");
  for (unsigned w : mux_widths) {
    power::MuxModel m(w, 3, tech);
    std::printf("%10u %15.3e %17.3e\n", w, m.energy(w / 2, 1, w / 2),
                gate_mean(outcomes[at++]));
  }

  std::puts("\n--- E_MUX vs number of inputs (w = 16) ---");
  std::printf("%10s %16s %18s\n", "inputs", "E_MUX model", "gate-level mean");
  for (unsigned n : mux_inputs) {
    power::MuxModel m(16, n, tech);
    std::printf("%10u %15.3e %17.3e\n", n, m.energy(8, 1, 8),
                gate_mean(outcomes[at++]));
  }

  std::puts("\n--- arbiter handover energy vs number of masters ---");
  std::printf("%10s %16s %16s\n", "masters", "E_handover", "E_idle");
  for (unsigned n : {2u, 3u, 4u, 8u, 16u}) {
    power::ArbiterFsmModel m(n, tech);
    std::printf("%10u %15.3e %15.3e\n", n, m.handover_energy(), m.idle_energy());
  }

  std::puts("\nmonotone growth along every parameter axis: the models are");
  std::puts("usable for early architecture exploration before RTL exists.");
  return 0;
}
