// Reproduces the paper's Sec. 6 cost claim: "the price to pay for the
// application of this analysis methodology ... is a doubling in the
// simulation time". Google-benchmark measures the same 20k-cycle
// testbench run with power analysis absent, disabled, and in each of the
// three integration styles.

#include <benchmark/benchmark.h>

#include "common.hpp"
#include "power/styles.hpp"

namespace {

using namespace ahbp;

constexpr auto kSimTime = sim::SimTime::us(200);  // 20k cycles @ 100 MHz

void BM_FunctionalOnly(benchmark::State& state) {
  for (auto _ : state) {
    bench::PaperSystem sys({.power_enabled = false});
    sys.run(kSimTime);
    benchmark::DoNotOptimize(sys.m1.stats().writes);
  }
}
BENCHMARK(BM_FunctionalOnly)->Unit(benchmark::kMillisecond);

void BM_PowerDisabled(benchmark::State& state) {
  // Estimator constructed but bypassed at runtime (POWERTEST compiled in
  // but switched off).
  for (auto _ : state) {
    bench::PaperSystem sys;
    sys.est->set_enabled(false);
    sys.run(kSimTime);
    benchmark::DoNotOptimize(sys.m1.stats().writes);
  }
}
BENCHMARK(BM_PowerDisabled)->Unit(benchmark::kMillisecond);

void BM_PowerLocalStyle(benchmark::State& state) {
  double energy = 0;
  for (auto _ : state) {
    bench::PaperSystem sys;
    sys.run(kSimTime);
    energy = sys.est->total_energy();
    benchmark::DoNotOptimize(energy);
  }
  state.counters["energy_nJ"] = energy * 1e9;
}
BENCHMARK(BM_PowerLocalStyle)->Unit(benchmark::kMillisecond);

void BM_PowerLocalWithTrace(benchmark::State& state) {
  for (auto _ : state) {
    bench::PaperSystem sys({.trace_window = sim::SimTime::ns(100)});
    sys.run(kSimTime);
    benchmark::DoNotOptimize(sys.est->total_energy());
  }
}
BENCHMARK(BM_PowerLocalWithTrace)->Unit(benchmark::kMillisecond);

void BM_PowerPrivateStyle(benchmark::State& state) {
  for (auto _ : state) {
    bench::PaperSystem sys({.power_enabled = false});
    power::PrivatePowerModel priv(&sys.top, "priv", sys.bus);
    sys.run(kSimTime);
    benchmark::DoNotOptimize(priv.total_energy());
  }
}
BENCHMARK(BM_PowerPrivateStyle)->Unit(benchmark::kMillisecond);

void BM_PowerGlobalStyle(benchmark::State& state) {
  for (auto _ : state) {
    bench::PaperSystem sys({.power_enabled = false});
    power::GlobalPowerAnalyzer analyzer(
        &sys.top, "an",
        power::PowerFsm::Config{.n_masters = sys.bus.n_masters(),
                                .n_slaves = sys.bus.n_slaves()});
    power::BusActivityProbe probe(&sys.top, "probe", sys.bus, analyzer);
    sys.run(kSimTime);
    benchmark::DoNotOptimize(analyzer.total_energy());
  }
}
BENCHMARK(BM_PowerGlobalStyle)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
