// Reproduces the paper's Sec. 6 cost claim: "the price to pay for the
// application of this analysis methodology ... is a doubling in the
// simulation time". Google-benchmark measures the same 20k-cycle
// testbench run with power analysis absent, disabled, and in each of the
// three integration styles, plus the telemetry layer (metrics registry
// and windowed sampling) on top.
//
// `bench_overhead --telemetry-guard` skips google-benchmark and instead
// enforces the observability contract's overhead guarantee: attaching a
// *disabled* metrics registry must cost < 2% wall clock versus no
// registry at all (min-of-N, interleaved A/B). Exit 1 on violation.
// `bench_overhead --txn-guard` does the same for the transaction tracer:
// compiled in but runtime-disabled must cost < 3% versus no tracer.
// `bench_overhead --events-guard` does it for the campaign event log: a
// campaign narrating into a *disabled* EventLog (plus an attached
// ProgressTracker) must cost < 2% versus running with no log at all.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <limits>

#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/progress.hpp"
#include "common.hpp"
#include "power/styles.hpp"
#include "telemetry/events.hpp"

namespace {

using namespace ahbp;

constexpr auto kSimTime = sim::SimTime::us(200);  // 20k cycles @ 100 MHz

void BM_FunctionalOnly(benchmark::State& state) {
  for (auto _ : state) {
    bench::PaperSystem sys({.power_enabled = false});
    sys.run(kSimTime);
    benchmark::DoNotOptimize(sys.m1.stats().writes);
  }
}
BENCHMARK(BM_FunctionalOnly)->Unit(benchmark::kMillisecond);

void BM_PowerDisabled(benchmark::State& state) {
  // Estimator constructed but bypassed at runtime (POWERTEST compiled in
  // but switched off).
  for (auto _ : state) {
    bench::PaperSystem sys;
    sys.est->set_enabled(false);
    sys.run(kSimTime);
    benchmark::DoNotOptimize(sys.m1.stats().writes);
  }
}
BENCHMARK(BM_PowerDisabled)->Unit(benchmark::kMillisecond);

void BM_PowerLocalStyle(benchmark::State& state) {
  double energy = 0;
  for (auto _ : state) {
    bench::PaperSystem sys;
    sys.run(kSimTime);
    energy = sys.est->total_energy();
    benchmark::DoNotOptimize(energy);
  }
  state.counters["energy_nJ"] = energy * 1e9;
}
BENCHMARK(BM_PowerLocalStyle)->Unit(benchmark::kMillisecond);

void BM_PowerLocalWithTrace(benchmark::State& state) {
  for (auto _ : state) {
    bench::PaperSystem sys({.trace_window = sim::SimTime::ns(100)});
    sys.run(kSimTime);
    benchmark::DoNotOptimize(sys.est->total_energy());
  }
}
BENCHMARK(BM_PowerLocalWithTrace)->Unit(benchmark::kMillisecond);

void BM_PowerTelemetryDisabled(benchmark::State& state) {
  // Metrics registry attached but switched off: the contract says this
  // costs one well-predicted branch per update (docs/OBSERVABILITY.md).
  for (auto _ : state) {
    telemetry::MetricsRegistry metrics;
    metrics.set_enabled(false);
    bench::PaperSystem sys({.metrics = &metrics});
    sys.run(kSimTime);
    benchmark::DoNotOptimize(sys.est->total_energy());
  }
}
BENCHMARK(BM_PowerTelemetryDisabled)->Unit(benchmark::kMillisecond);

void BM_PowerTelemetryMetrics(benchmark::State& state) {
  for (auto _ : state) {
    telemetry::MetricsRegistry metrics;
    bench::PaperSystem sys({.metrics = &metrics});
    sys.run(kSimTime);
    sys.est->flush_telemetry();
    benchmark::DoNotOptimize(metrics.counter("ahb.power.sampled_cycles").value());
  }
}
BENCHMARK(BM_PowerTelemetryMetrics)->Unit(benchmark::kMillisecond);

void BM_PowerTelemetryWindows(benchmark::State& state) {
  // Full observability stack: live metrics plus 100-cycle windowed power
  // sampling and the instruction duration-event log.
  std::size_t windows = 0;
  for (auto _ : state) {
    telemetry::MetricsRegistry metrics;
    bench::PaperSystem sys(
        {.telemetry_window_cycles = 100, .metrics = &metrics});
    sys.run(kSimTime);
    sys.est->flush_telemetry();
    windows = sys.est->windows()->windows().size();
    benchmark::DoNotOptimize(windows);
  }
  state.counters["windows"] = static_cast<double>(windows);
}
BENCHMARK(BM_PowerTelemetryWindows)->Unit(benchmark::kMillisecond);

void BM_PowerTxnTrace(benchmark::State& state) {
  // Per-transaction reconstruction and energy attribution on top of the
  // base estimator.
  std::size_t txns = 0;
  for (auto _ : state) {
    bench::PaperSystem sys({.txn_trace = true});
    sys.run(kSimTime);
    sys.est->flush_telemetry();
    txns = sys.est->txn_tracer()->log().size();
    benchmark::DoNotOptimize(txns);
  }
  state.counters["txns"] = static_cast<double>(txns);
}
BENCHMARK(BM_PowerTxnTrace)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// --telemetry-guard: assert the disabled-registry overhead bound.

double wall_seconds_once(bool with_registry) {
  const auto t0 = std::chrono::steady_clock::now();
  telemetry::MetricsRegistry metrics;
  metrics.set_enabled(false);
  bench::PaperSystem sys({.metrics = with_registry ? &metrics : nullptr});
  sys.run(kSimTime);
  benchmark::DoNotOptimize(sys.est->total_energy());
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

int run_telemetry_guard() {
  constexpr int kReps = 9;
  constexpr double kMaxDelta = 0.02;  // contract: < 2%
  // Interleave A/B so clock drift and cache warmup hit both sides
  // equally; compare minima, the usual low-noise wall-clock statistic.
  double base = std::numeric_limits<double>::infinity();
  double off = std::numeric_limits<double>::infinity();
  wall_seconds_once(false);  // warm up code and allocator once
  for (int i = 0; i < kReps; ++i) {
    base = std::min(base, wall_seconds_once(false));
    off = std::min(off, wall_seconds_once(true));
  }
  const double delta = (off - base) / base;
  std::printf("telemetry-off guard: baseline %.3f ms, disabled-registry "
              "%.3f ms, delta %+.2f%% (bound < %.0f%%)\n",
              base * 1e3, off * 1e3, delta * 100.0, kMaxDelta * 100.0);
  if (delta >= kMaxDelta) {
    std::fputs("FAIL: disabled telemetry exceeds the overhead bound\n", stderr);
    return 1;
  }
  std::puts("PASS");
  return 0;
}

// ---------------------------------------------------------------------------
// --txn-guard: assert the disabled-tracer overhead bound.

double txn_wall_seconds_once(bool with_tracer) {
  // 3x the benchmark duration per sample: the disabled tracer costs one
  // branch, so the guard's enemy is scheduler noise, and longer samples
  // average bursts out.
  const auto t0 = std::chrono::steady_clock::now();
  bench::PaperSystem sys({.txn_trace = with_tracer});
  if (with_tracer) sys.est->txn_tracer()->set_enabled(false);
  sys.run(kSimTime * 3);
  benchmark::DoNotOptimize(sys.est->total_energy());
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

int run_txn_guard() {
  constexpr int kReps = 13;
  constexpr double kMaxDelta = 0.03;  // contract: < 3%
  double base = std::numeric_limits<double>::infinity();
  double off = std::numeric_limits<double>::infinity();
  txn_wall_seconds_once(false);  // warm up code and allocator once
  for (int i = 0; i < kReps; ++i) {
    base = std::min(base, txn_wall_seconds_once(false));
    off = std::min(off, txn_wall_seconds_once(true));
  }
  const double delta = (off - base) / base;
  std::printf("txn-trace guard: baseline %.3f ms, disabled-tracer %.3f ms, "
              "delta %+.2f%% (bound < %.0f%%)\n",
              base * 1e3, off * 1e3, delta * 100.0, kMaxDelta * 100.0);
  if (delta >= kMaxDelta) {
    std::fputs("FAIL: disabled txn tracing exceeds the overhead bound\n",
               stderr);
    return 1;
  }
  std::puts("PASS");
  return 0;
}

// ---------------------------------------------------------------------------
// --events-guard: assert the disabled-event-log overhead bound.

double events_wall_seconds_once(bool with_events) {
  // Many tiny runs so the per-run narration path (run_start/run_finish
  // emission, tracker bookkeeping) dominates over simulation work --
  // the worst case for the disabled sink's early-out branch.
  telemetry::EventLog::Config cfg;
  cfg.enabled = false;
  telemetry::EventLog log(cfg);
  campaign::ProgressTracker tracker;
  tracker.attach(log);
  std::vector<campaign::RunSpec> specs;
  specs.reserve(48);
  for (int i = 0; i < 48; ++i) {
    specs.push_back({"guard_" + std::to_string(i), [] {
                       bench::PaperSystem sys;
                       sys.run(sim::SimTime::us(5));
                       campaign::PowerReport r;
                       r.total_energy = sys.est->total_energy();
                       r.cycles = 500;
                       return r;
                     }});
  }
  campaign::Campaign::Config ccfg;
  ccfg.threads = 1;
  const campaign::Campaign pool(ccfg);
  campaign::Campaign::RunOptions opts;
  if (with_events) {
    opts.events = &log;
    opts.progress = &tracker;
  }
  const auto t0 = std::chrono::steady_clock::now();
  const auto outcomes = pool.run(specs, opts);
  benchmark::DoNotOptimize(outcomes.size());
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

int run_events_guard() {
  constexpr int kReps = 9;
  constexpr double kMaxDelta = 0.02;  // contract: < 2%
  double base = std::numeric_limits<double>::infinity();
  double off = std::numeric_limits<double>::infinity();
  events_wall_seconds_once(false);  // warm up code and allocator once
  for (int i = 0; i < kReps; ++i) {
    base = std::min(base, events_wall_seconds_once(false));
    off = std::min(off, events_wall_seconds_once(true));
  }
  const double delta = (off - base) / base;
  std::printf("events-off guard: baseline %.3f ms, disabled-log %.3f ms, "
              "delta %+.2f%% (bound < %.0f%%)\n",
              base * 1e3, off * 1e3, delta * 100.0, kMaxDelta * 100.0);
  if (delta >= kMaxDelta) {
    std::fputs("FAIL: disabled event log exceeds the overhead bound\n",
               stderr);
    return 1;
  }
  std::puts("PASS");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--telemetry-guard") == 0) {
      return run_telemetry_guard();
    }
    if (std::strcmp(argv[i], "--txn-guard") == 0) {
      return run_txn_guard();
    }
    if (std::strcmp(argv[i], "--events-guard") == 0) {
      return run_events_guard();
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
