// Architecture-exploration ablation: shared AHB vs multi-layer
// interconnect -- the kind of early topology decision the paper's
// methodology exists to inform. Same workload (two masters, two slaves,
// each master hammering its own slave -> no intrinsic contention, then a
// shared-slave variant), measured for completion time and fabric energy.

#include <cstdio>

#include "power/report.hpp"
#include "tlm/multilayer.hpp"
#include "tlm/tlm.hpp"

namespace {

using namespace ahbp;

struct Result {
  std::uint64_t cycles = 0;
  double energy = 0.0;
  std::uint64_t contention = 0;
};

constexpr unsigned kTransfersPerMaster = 20000;

/// Shared bus: the two masters' transfers serialize on one fabric.
Result run_shared(bool same_slave) {
  tlm::TlmBus bus(tlm::TlmBus::Config{.n_masters = 2});
  tlm::TlmMemory s0, s1;
  bus.map(s0, 0x0000, 0x1000);
  bus.map(s1, 0x1000, 0x1000);
  std::mt19937_64 rng(7);
  for (unsigned i = 0; i < kTransfersPerMaster; ++i) {
    for (unsigned m = 0; m < 2; ++m) {
      const std::uint32_t base = same_slave ? 0x0000 : 0x1000 * m;
      const std::uint32_t addr = base + 4 * (rng() % 256);
      bus.write(m, addr, static_cast<std::uint32_t>(rng()));
    }
  }
  return Result{bus.cycles(), bus.total_energy(), 0};
}

/// Multi-layer: each master has its own layer; different-slave traffic
/// runs fully parallel.
Result run_multilayer(bool same_slave) {
  tlm::MultilayerBus bus(tlm::MultilayerBus::Config{.n_masters = 2});
  tlm::TlmMemory s0, s1;
  bus.map(s0, 0x0000, 0x1000);
  bus.map(s1, 0x1000, 0x1000);
  std::mt19937_64 rng(7);
  for (unsigned i = 0; i < kTransfersPerMaster; ++i) {
    for (unsigned m = 0; m < 2; ++m) {
      const std::uint32_t base = same_slave ? 0x0000 : 0x1000 * m;
      const std::uint32_t addr = base + 4 * (rng() % 256);
      bus.write(m, addr, static_cast<std::uint32_t>(rng()));
    }
  }
  return Result{bus.cycles(), bus.total_energy(), bus.contention_cycles()};
}

void report(const char* workload, const Result& shared, const Result& multi) {
  std::printf("--- %s ---\n", workload);
  std::printf("%-14s %12s %14s %16s\n", "topology", "cycles", "fabric energy",
              "energy/transfer");
  const double n = 2.0 * kTransfersPerMaster;
  std::printf("%-14s %12llu %14s %16s\n", "shared AHB",
              static_cast<unsigned long long>(shared.cycles),
              power::format_energy(shared.energy).c_str(),
              power::format_energy(shared.energy / n).c_str());
  std::printf("%-14s %12llu %14s %16s   (contention %llu cyc)\n", "multi-layer",
              static_cast<unsigned long long>(multi.cycles),
              power::format_energy(multi.energy).c_str(),
              power::format_energy(multi.energy / n).c_str(),
              static_cast<unsigned long long>(multi.contention));
  std::printf("speedup %.2fx, energy ratio %.2fx\n\n",
              static_cast<double>(shared.cycles) / multi.cycles,
              multi.energy / shared.energy);
}

}  // namespace

int main() {
  std::puts("=== Topology exploration: shared AHB vs multi-layer (TLM) ===\n");

  const Result sh_disjoint = run_shared(false);
  const Result ml_disjoint = run_multilayer(false);
  report("disjoint slaves (no intrinsic contention)", sh_disjoint, ml_disjoint);

  const Result sh_shared = run_shared(true);
  const Result ml_shared = run_multilayer(true);
  report("both masters hit one slave (full contention)", sh_shared, ml_shared);

  std::puts("reading the tables:");
  std::puts(" * disjoint traffic: the multi-layer fabric nearly halves the");
  std::puts("   completion time -- the parallel layers pay for themselves;");
  std::puts(" * shared-slave traffic: the extra layers buy nothing (the slave");
  std::puts("   serializes anyway) while the duplicated fabric still burns");
  std::puts("   more energy per transfer -- topology must match the traffic.");

  const bool ok =
      static_cast<double>(sh_disjoint.cycles) / ml_disjoint.cycles > 1.6 &&
      static_cast<double>(sh_shared.cycles) / ml_shared.cycles < 1.3 &&
      ml_shared.contention > 0;
  if (!ok) {
    std::puts("TOPOLOGY CHECK FAILED");
    return 1;
  }
  std::puts("TOPOLOGY CHECK PASSED.");
  return 0;
}
