// Ablation over instruction-set granularity (paper Sec. 3): the trade-off
// between characterization effort (number of instructions to
// characterize) and the information the analysis yields.
//
//   coarse : 2 modes  (TRANSFER / NOT)      -> 4 instructions
//   paper  : 4 modes  (IDLE/IDLE_HO/R/W)    -> up to 16 instructions
//   fine   : per (mode x handover x wait)   -> tens of instructions
//
// Total energy is identical by construction (the same per-cycle energies
// are binned differently); what changes is how actionable the table is.

#include <cmath>
#include <cstdio>
#include <map>
#include <string>

#include "common.hpp"
#include "power/report.hpp"

namespace {

using namespace ahbp;

struct Binned {
  std::map<std::string, power::PowerFsm::InstrStats> table;
  void add(const std::string& name, double e) {
    auto& st = table[name];
    ++st.count;
    st.energy += e;
  }
};

}  // namespace

int main() {
  std::puts("=== Ablation: instruction-set granularity (paper Sec. 3) ===\n");

  bench::PaperSystem sys;
  // A custom report sink re-bins the same per-cycle energies at all
  // three granularities simultaneously.
  struct MultiGranularitySink : power::PowerReportIf {
    explicit MultiGranularitySink(power::PowerFsm::Config cfg) : fsm(cfg) {}
    void post_cycle(const power::CycleView& v) override {
      const auto r = fsm.step(v);
      const double e = r.blocks.total();
      // Coarse: transfer vs non-transfer.
      const std::string c = v.data_active ? "TRANS" : "NOTRANS";
      coarse.add(prev_c + "_" + c, e);
      prev_c = c;
      // Fine: paper mode x hready.
      const std::string f =
          std::string(power::to_string(r.mode)) + (v.hready ? "" : "+WAIT");
      fine.add(prev_f + "->" + f, e);
      prev_f = f;
    }
    power::PowerFsm fsm;
    Binned coarse, fine;
    std::string prev_c = "NOTRANS", prev_f = "IDLE";
  } sink(power::PowerFsm::Config{.n_masters = sys.bus.n_masters(),
                                 .n_slaves = sys.bus.n_slaves()});

  power::BusActivityProbe probe(&sys.top, "probe", sys.bus, sink);
  sys.run(sim::SimTime::us(50));

  const auto& paper_tab = sink.fsm.instructions();

  auto summarize = [](const char* name, std::size_t instructions,
                      double total_e) {
    std::printf("%-28s %6zu instructions   total %s\n", name, instructions,
                power::format_energy(total_e).c_str());
  };

  double coarse_e = 0.0;
  for (const auto& [k, v] : sink.coarse.table) coarse_e += v.energy;
  double fine_e = 0.0;
  for (const auto& [k, v] : sink.fine.table) fine_e += v.energy;

  summarize("coarse (2 modes)", sink.coarse.table.size(), coarse_e);
  summarize("paper (4 modes)", paper_tab.size(), sink.fsm.total_energy());
  summarize("fine (mode x wait)", sink.fine.table.size(), fine_e);

  std::puts("\ncoarse table:");
  for (const auto& [k, v] : sink.coarse.table) {
    std::printf("  %-20s %9llu x %10s\n", k.c_str(),
                static_cast<unsigned long long>(v.count),
                power::format_energy(v.average()).c_str());
  }

  std::puts("\npaper-granularity table (what the coarse table hides):");
  std::fputs(power::format_instruction_table(sink.fsm).c_str(), stdout);

  // The headline insight (data path vs arbitration) only exists at the
  // paper's granularity or finer: the coarse table cannot express it.
  const double data = power::data_transfer_share(sink.fsm);
  const double arb = power::arbitration_share(sink.fsm);
  std::printf("\ninsight available at paper granularity: data %.1f %% vs arb %.1f %%\n",
              100 * data, 100 * arb);
  std::puts("insight available at coarse granularity: none (handover invisible)");

  const bool consistent =
      std::abs(coarse_e - sink.fsm.total_energy()) < 1e-12 + 1e-9 * coarse_e &&
      std::abs(fine_e - sink.fsm.total_energy()) < 1e-12 + 1e-9 * fine_e;
  std::printf("\nenergy conservation across granularities: %s\n",
              consistent ? "OK" : "VIOLATED");
  return consistent ? 0 : 1;
}
