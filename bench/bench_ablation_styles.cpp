// Ablation over the paper's Fig. 1 design space: the private / local /
// global power-model integration styles. Runs the same workload under
// all three, comparing reported energy (accuracy vs the cycle-level
// reference), wall-clock cost and intrusiveness proxies.

#include <chrono>
#include <cstdio>

#include "common.hpp"
#include "power/report.hpp"
#include "power/styles.hpp"

namespace {

using namespace ahbp;
using Clock = std::chrono::steady_clock;

constexpr auto kSimTime = sim::SimTime::us(100);

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

}  // namespace

int main() {
  std::puts("=== Ablation: power-model integration styles (paper Fig. 1) ===\n");
  std::printf("workload: paper testbench, %s @ 100 MHz\n\n",
              kSimTime.to_string().c_str());

  // Reference: functional only.
  double t_func = 0.0;
  {
    const auto t0 = Clock::now();
    bench::PaperSystem sys({.power_enabled = false});
    sys.run(kSimTime);
    t_func = ms_since(t0);
  }

  double e_local = 0.0, t_local = 0.0;
  {
    const auto t0 = Clock::now();
    bench::PaperSystem sys;
    sys.run(kSimTime);
    t_local = ms_since(t0);
    e_local = sys.est->total_energy();
  }

  double e_global = 0.0, t_global = 0.0;
  std::uint64_t posted = 0;
  {
    const auto t0 = Clock::now();
    bench::PaperSystem sys({.power_enabled = false});
    power::GlobalPowerAnalyzer an(&sys.top, "an",
                                  power::PowerFsm::Config{
                                      .n_masters = sys.bus.n_masters(),
                                      .n_slaves = sys.bus.n_slaves()});
    power::BusActivityProbe probe(&sys.top, "probe", sys.bus, an);
    sys.run(kSimTime);
    t_global = ms_since(t0);
    e_global = an.total_energy();
    posted = probe.posted();
  }

  double e_priv = 0.0, t_priv = 0.0;
  std::uint64_t events = 0;
  {
    const auto t0 = Clock::now();
    bench::PaperSystem sys({.power_enabled = false});
    power::PrivatePowerModel priv(&sys.top, "priv", sys.bus);
    sys.run(kSimTime);
    t_priv = ms_since(t0);
    e_priv = priv.total_energy();
    events = priv.event_count();
  }

  std::printf("%-22s %12s %12s %10s %14s\n", "style", "energy", "vs local",
              "time", "vs functional");
  auto row = [&](const char* name, double e, double t, const char* note) {
    std::printf("%-22s %12s %11.1f%% %8.1f ms %12.2fx  %s\n", name,
                power::format_energy(e).c_str(),
                e_local > 0 ? 100.0 * e / e_local : 0.0, t, t / t_func, note);
  };
  std::printf("%-22s %12s %12s %8.1f ms %12.2fx\n", "functional only", "-", "-",
              t_func, 1.0);
  row("local (monitor FSM)", e_local, t_local, "(paper's choice, ~2x)");
  row("global (analyzer)", e_global, t_global, "(most reusable)");
  row("private (per-event)", e_priv, t_priv, "(most intrusive)");

  std::printf("\nglobal probe posted %llu cycle records; private style handled %llu"
              " signal events\n",
              static_cast<unsigned long long>(posted),
              static_cast<unsigned long long>(events));

  const bool agree = e_global > 0.999 * e_local && e_global < 1.001 * e_local;
  std::printf("local/global agreement: %s (identical FSM on identical samples)\n",
              agree ? "EXACT" : "MISMATCH");
  return agree ? 0 : 1;
}
