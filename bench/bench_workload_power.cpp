// Extension bench: bus power under *real software* workloads. The paper
// evaluates with synthetic WRITE-READ traffic; here the same methodology
// measures RV32I programs running on the CPU master -- showing how
// workload character (compute-bound vs copy vs write-burst) moves the
// power picture, which is precisely the early-exploration question the
// methodology exists to answer.

#include <cstdio>
#include <vector>

#include "ahb/ahb.hpp"
#include "cpu/cpu.hpp"
#include "power/power.hpp"
#include "sim/sim.hpp"

namespace {

using namespace ahbp;

struct WorkloadResult {
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
  double energy = 0.0;
  double mean_power = 0.0;
  power::BlockEnergy blocks;
};

WorkloadResult run_program(const std::vector<std::uint32_t>& program,
                           unsigned max_cycles) {
  sim::Kernel kernel;
  sim::Module top(nullptr, "top");
  sim::Clock clk(&top, "clk", sim::SimTime::ns(10), 0.5, sim::SimTime::ns(10));
  ahb::AhbBus bus(&top, "ahb", clk);
  ahb::DefaultMaster dm(&top, "dm", bus);
  cpu::CpuMaster core(&top, "cpu", bus, {});
  ahb::MemorySlave rom(&top, "rom", bus, {.base = 0x0000, .size = 0x1000});
  ahb::MemorySlave ram(&top, "ram", bus, {.base = 0x1000, .size = 0x3000});
  cpu::load_program(rom, 0, program);
  for (int i = 0; i < 256; ++i) ram.poke(4 * i, 0x01010101u * (i & 0xFF));
  bus.finalize();
  power::AhbPowerEstimator est(&top, "power", bus);

  unsigned budget = max_cycles;
  while (!core.halted() && budget > 0) {
    const unsigned chunk = std::min(budget, 1000u);
    kernel.run(sim::SimTime::ns(10) * chunk);
    budget -= chunk;
  }

  WorkloadResult r;
  r.instructions = core.core().instret();
  r.cycles = static_cast<std::uint64_t>(kernel.now() / sim::SimTime::ns(10));
  r.energy = est.total_energy();
  r.mean_power = r.energy / kernel.now().to_seconds();
  r.blocks = est.block_totals();
  return r;
}

void report(const char* name, const WorkloadResult& r) {
  const double epi =
      r.instructions > 0 ? r.energy / static_cast<double>(r.instructions) : 0;
  std::printf("%-22s %9llu instr %8llu cyc  %10s  %10s  %12s\n", name,
              static_cast<unsigned long long>(r.instructions),
              static_cast<unsigned long long>(r.cycles),
              power::format_energy(r.energy).c_str(),
              power::format_power(r.mean_power).c_str(),
              power::format_energy(epi).c_str());
}

}  // namespace

int main() {
  std::puts("=== Bus power of real RV32I workloads (CPU master @ 100 MHz) ===\n");
  std::printf("%-22s %15s %12s %12s %12s %14s\n", "workload", "", "", "energy",
              "mean power", "energy/instr");

  const auto fib = run_program(cpu::progs::fibonacci(40), 100000);
  report("fibonacci(40)", fib);

  const auto copy = run_program(cpu::progs::memcpy_words(0x1000, 0x3000, 256),
                                200000);
  report("memcpy 256 words", copy);

  const auto bytes = run_program(cpu::progs::memcpy_bytes(0x1000, 0x3000, 256),
                                 400000);
  report("memcpy 256 bytes", bytes);

  const auto fill = run_program(cpu::progs::fill_random(0x3000, 256, 0xBEEF),
                                200000);
  report("fill 256 random words", fill);

  std::puts("\nreading the table:");
  std::puts(" * compute-bound code (fibonacci) still burns bus energy on its");
  std::puts("   instruction stream -- fetch is bus traffic too;");
  std::puts(" * random-data writes cost more per instruction than the copy");
  std::puts("   (higher HWDATA Hamming distances -> more M2S switching);");
  std::puts(" * byte-wise copy pays the read-modify-write tax per store.");

  // Shape checks: data movement must cost more energy per instruction
  // than pure compute.
  const double epi_fib =
      fib.energy / static_cast<double>(fib.instructions);
  const double epi_fill =
      fill.energy / static_cast<double>(fill.instructions);
  if (epi_fill <= epi_fib) {
    std::puts("WORKLOAD CHECK FAILED: write-heavy code should out-spend compute");
    return 1;
  }
  std::puts("WORKLOAD CHECK PASSED.");
  return 0;
}
