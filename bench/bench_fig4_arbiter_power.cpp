// Reproduces Figure 4 of the paper: arbiter power consumption during the
// first 4 us. The arbiter is one of the least power-hungry sub-blocks --
// compare against Figure 5 (M2S mux), which dwarfs it.

#include <cstdio>

#include "common.hpp"
#include "power/report.hpp"

int main() {
  using namespace ahbp;

  bench::PaperSystem sys({.trace_window = sim::SimTime::ns(100)});
  std::puts("=== Figure 4: arbiter power consumption (first 4 us) ===\n");

  sys.run(sim::SimTime::us(4));
  sys.est->flush_trace();

  const power::PowerTrace& tr = *sys.est->trace();
  std::fputs(power::format_trace(tr, "arb", sim::SimTime::us(4)).c_str(), stdout);

  double peak_arb = 0.0, peak_m2s = 0.0, sum_arb = 0.0, sum_m2s = 0.0;
  for (const auto& p : tr.points()) {
    peak_arb = std::max(peak_arb, tr.power_arb(p));
    peak_m2s = std::max(peak_m2s, tr.power_m2s(p));
    sum_arb += p.energy.arb;
    sum_m2s += p.energy.m2s;
  }
  std::printf("\npeak arbiter power: %s   peak M2S power: %s\n",
              power::format_power(peak_arb).c_str(),
              power::format_power(peak_m2s).c_str());
  std::printf("arbiter/M2S energy ratio over the window: %.4f (paper: << 1)\n",
              sum_arb / sum_m2s);
  if (sum_arb >= sum_m2s) {
    std::puts("SHAPE CHECK FAILED: arbiter should dissipate far less than M2S");
    return 1;
  }
  std::puts("SHAPE CHECK PASSED.");
  return 0;
}
