// Robustness of the Table-1 reproduction: the paper reports one
// simulation; we re-run the testbench across many random seeds and
// report mean +/- stddev of the headline quantities, showing the
// data-path-vs-arbitration split is a property of the workload class,
// not of one lucky seed.

#include <cmath>
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "power/report.hpp"

namespace {

using namespace ahbp;

struct Sample {
  double data_share;
  double arb_share;
  double total_nj;
  double wr_avg_pj;  ///< WRITE_READ average energy
};

struct Moments {
  double mean = 0.0;
  double stddev = 0.0;
};

Moments moments(const std::vector<double>& xs) {
  Moments m;
  for (double x : xs) m.mean += x;
  m.mean /= static_cast<double>(xs.size());
  for (double x : xs) m.stddev += (x - m.mean) * (x - m.mean);
  m.stddev = std::sqrt(m.stddev / static_cast<double>(xs.size()));
  return m;
}

}  // namespace

int main() {
  std::puts("=== Seed robustness of the Table 1 headline (10 seeds, 50 us) ===\n");

  std::vector<double> data, arb, total, wr;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    bench::PaperSystem sys({.seed1 = seed * 17, .seed2 = seed * 31 + 5});
    sys.run(sim::SimTime::us(50));
    const power::PowerFsm& fsm = sys.est->fsm();
    data.push_back(100.0 * power::data_transfer_share(fsm));
    arb.push_back(100.0 * power::arbitration_share(fsm));
    total.push_back(fsm.total_energy() * 1e9);
    const auto tab = fsm.instructions();
    wr.push_back(tab.count("WRITE_READ") ? tab.at("WRITE_READ").average() * 1e12
                                         : 0.0);
    std::printf("seed %2llu: data %.2f %%  arb %.2f %%  total %.1f nJ\n",
                static_cast<unsigned long long>(seed), data.back(), arb.back(),
                total.back());
  }

  const Moments md = moments(data), ma = moments(arb), mt = moments(total),
                mw = moments(wr);
  std::printf("\n%-28s %10s %10s\n", "quantity", "mean", "stddev");
  std::printf("%-28s %9.2f%% %9.2f%%\n", "data-transfer share", md.mean, md.stddev);
  std::printf("%-28s %9.2f%% %9.2f%%\n", "arbitration share", ma.mean, ma.stddev);
  std::printf("%-28s %7.1f nJ %7.1f nJ\n", "total energy", mt.mean, mt.stddev);
  std::printf("%-28s %7.2f pJ %7.2f pJ\n", "WRITE_READ avg energy", mw.mean,
              mw.stddev);
  std::printf("\npaper single-run reference: data 87.3 %%, arb 12.7 %%\n");

  // The split must be stable: every seed within a few points of the mean,
  // and the mean in the paper's neighbourhood.
  bool ok = md.stddev < 3.0 && md.mean > 80.0 && md.mean < 96.0;
  for (double d : data) ok = ok && std::fabs(d - md.mean) < 8.0;
  if (!ok) {
    std::puts("ROBUSTNESS CHECK FAILED: headline split is seed-sensitive");
    return 1;
  }
  std::puts("ROBUSTNESS CHECK PASSED: the split is a workload-class property.");
  return 0;
}
