// Bit-parallel gate-simulation throughput -- the engine-level numbers
// behind the 64-lane "power emulation" rewrite (docs/ARCHITECTURE.md,
// "Bit-parallel power emulation").
//
// Two measurements, both written to BENCH_gatesim.json (schema
// "ahbpower.bench_gatesim.v1") and printed as a table:
//
//  * raw engine throughput: gate evaluations per second for the scalar
//    GateSim vs lane-gate evaluations per second for BitSim (one 64-lane
//    eval of a G-gate netlist counts 64*G), on the paper's three
//    characterized structures. This isolates the engine speedup from
//    characterization host code.
//  * characterization wall time: charlib's decoder/mux/arbiter flows run
//    scalar vs bit-parallel at the paper's shapes and at stress shapes,
//    with per-flow and aggregate speedups. End-to-end gains are smaller
//    than the raw engine ratio because stimulus generation, sample
//    assembly and the least-squares fit are engine-independent
//    (Amdahl's law); both numbers are recorded.
//
//   bench_gatesim_throughput [--smoke] [--out <path>]
//
// --smoke shrinks every workload for the bench-smoke ctest label; the
// JSON shape is identical (the validator checks it either way). --out
// overrides the default ./BENCH_gatesim.json artifact path.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "charlib/charlib.hpp"
#include "telemetry/exporters.hpp"
#include "gate/bitsim.hpp"
#include "gate/gatesim.hpp"
#include "gate/synth.hpp"

namespace {

using namespace ahbp;
using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point t0) {
  return std::chrono::duration<double>(clock_type::now() - t0).count();
}

// --- raw engine throughput -------------------------------------------------

struct Throughput {
  std::string name;
  std::size_t gates = 0;
  std::uint64_t evals = 0;                  ///< scalar evals == BitSim waves
  double scalar_gate_evals_per_s = 0.0;
  double bitsim_lane_gate_evals_per_s = 0.0;  ///< kAggregate accounting
  double bitsim_perlane_lane_gate_evals_per_s = 0.0;  ///< kPerLane
  [[nodiscard]] double ratio() const {
    return scalar_gate_evals_per_s > 0
               ? bitsim_lane_gate_evals_per_s / scalar_gate_evals_per_s
               : 0.0;
  }
};

/// Random word per input pin each round; the same stimulus drives all
/// three engine configurations (scalar lane 0 uses bit 0).
Throughput measure_throughput(std::string name, const gate::Netlist& nl,
                              bool sequential, std::uint64_t evals) {
  Throughput r;
  r.name = std::move(name);
  r.gates = nl.gate_count();
  r.evals = evals;
  const gate::Technology tech = gate::Technology::default_2003();

  {
    std::mt19937_64 rng(1);
    gate::GateSim simu(nl, tech);
    const auto t0 = clock_type::now();
    for (std::uint64_t e = 0; e < evals; ++e) {
      for (gate::NetId in : nl.inputs()) simu.set_input(in, (rng() & 1u) != 0);
      sequential ? simu.tick() : simu.eval();
    }
    r.scalar_gate_evals_per_s =
        static_cast<double>(evals) * static_cast<double>(r.gates) /
        seconds_since(t0);
  }

  const auto run_bitsim = [&](gate::BitSim::Accounting mode) {
    std::mt19937_64 rng(1);
    gate::BitSim simu(nl, tech, mode);
    const auto t0 = clock_type::now();
    for (std::uint64_t e = 0; e < evals; ++e) {
      for (gate::NetId in : nl.inputs()) simu.set_input(in, rng());
      sequential ? simu.tick() : simu.eval();
    }
    return static_cast<double>(evals) * static_cast<double>(r.gates) *
           gate::BitSim::kLanes / seconds_since(t0);
  };
  r.bitsim_lane_gate_evals_per_s = run_bitsim(gate::BitSim::Accounting::kAggregate);
  r.bitsim_perlane_lane_gate_evals_per_s =
      run_bitsim(gate::BitSim::Accounting::kPerLane);
  return r;
}

// --- characterization wall time --------------------------------------------

struct FlowTiming {
  std::string name;
  unsigned samples = 0;
  double scalar_ms = 0.0;
  double bitparallel_ms = 0.0;
  [[nodiscard]] double speedup() const {
    return bitparallel_ms > 0 ? scalar_ms / bitparallel_ms : 0.0;
  }
};

template <class Flow>
FlowTiming time_flow(std::string name, unsigned samples, unsigned reps,
                     Flow&& flow) {
  FlowTiming t;
  t.name = std::move(name);
  t.samples = samples;
  for (const charlib::Engine engine :
       {charlib::Engine::kScalar, charlib::Engine::kBitParallel}) {
    const auto t0 = clock_type::now();
    for (unsigned r = 0; r < reps; ++r) flow(engine);
    const double ms = seconds_since(t0) * 1e3 / reps;
    (engine == charlib::Engine::kScalar ? t.scalar_ms : t.bitparallel_ms) = ms;
  }
  return t;
}

// --- JSON ------------------------------------------------------------------

void write_json(const std::filesystem::path& path, bool smoke,
                const std::vector<Throughput>& tp,
                const std::vector<FlowTiming>& flows) {
  if (path.has_parent_path()) std::filesystem::create_directories(path.parent_path());
  std::ofstream os(path);
  os << "{\n  \"schema\": \"ahbpower.bench_gatesim.v1\",\n"
     << "  \"name\": \"gatesim_throughput\",\n"
     << "  \"lanes\": " << gate::BitSim::kLanes << ",\n"
     << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
  char buf[64];
  const auto num = [&](double v) {
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return std::string(buf);
  };
  os << "  \"throughput\": [\n";
  for (std::size_t i = 0; i < tp.size(); ++i) {
    const Throughput& t = tp[i];
    os << "    {\"name\": \"" << telemetry::json_escape(t.name)
       << "\", \"gates\": " << t.gates
       << ", \"evals\": " << t.evals
       << ",\n     \"scalar_gate_evals_per_s\": " << num(t.scalar_gate_evals_per_s)
       << ",\n     \"bitsim_lane_gate_evals_per_s\": "
       << num(t.bitsim_lane_gate_evals_per_s)
       << ",\n     \"bitsim_perlane_lane_gate_evals_per_s\": "
       << num(t.bitsim_perlane_lane_gate_evals_per_s)
       << ",\n     \"ratio\": " << num(t.ratio()) << "}"
       << (i + 1 < tp.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"characterization\": [\n";
  double total_scalar = 0.0, total_bitpar = 0.0;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const FlowTiming& f = flows[i];
    total_scalar += f.scalar_ms;
    total_bitpar += f.bitparallel_ms;
    os << "    {\"name\": \"" << telemetry::json_escape(f.name)
       << "\", \"samples\": " << f.samples
       << ", \"scalar_ms\": " << num(f.scalar_ms)
       << ", \"bitparallel_ms\": " << num(f.bitparallel_ms)
       << ", \"speedup\": " << num(f.speedup()) << "}"
       << (i + 1 < flows.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"aggregate\": {\"scalar_ms\": " << num(total_scalar)
     << ", \"bitparallel_ms\": " << num(total_bitpar)
     << ", \"speedup\": " << num(total_bitpar > 0 ? total_scalar / total_bitpar : 0.0)
     << "}\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::filesystem::path out = "BENCH_gatesim.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out <path>]\n", argv[0]);
      return 2;
    }
  }

  using namespace ahbp;
  std::puts("=== Bit-parallel gate simulation throughput ===\n");

  // Raw engine numbers on the paper's three characterized structures.
  const std::uint64_t evals = smoke ? 200 : 20000;
  const gate::DecoderNetlist dec = gate::build_onehot_decoder(64);
  const gate::MuxNetlist mux = gate::build_mux(32, 16);
  const gate::ArbiterNetlist arb = gate::build_priority_arbiter(16);
  std::vector<Throughput> tp;
  tp.push_back(measure_throughput("decoder64", dec.nl, false, evals));
  tp.push_back(measure_throughput("mux32x16", mux.nl, false, evals));
  tp.push_back(measure_throughput("arbiter16", arb.nl, true, evals / 2));

  std::printf("%-12s %8s %14s %18s %8s\n", "netlist", "gates", "scalar ev/s",
              "bitsim lane-ev/s", "ratio");
  for (const Throughput& t : tp) {
    std::printf("%-12s %8zu %14.3e %18.3e %7.1fx\n", t.name.c_str(), t.gates,
                t.scalar_gate_evals_per_s, t.bitsim_lane_gate_evals_per_s,
                t.ratio());
  }

  // Characterization wall time, scalar vs bit-parallel.
  const unsigned reps = smoke ? 1 : 10;
  const unsigned paper_n = smoke ? 192 : 2000;
  const unsigned stress_n = smoke ? 256 : 8192;
  const gate::Technology tech = gate::Technology::default_2003();
  std::vector<FlowTiming> flows;
  flows.push_back(time_flow("decoder/16o", paper_n, reps, [&](charlib::Engine e) {
    (void)charlib::characterize_decoder(16, paper_n, 1234, tech, e);
  }));
  flows.push_back(time_flow("mux/32x4", paper_n, reps, [&](charlib::Engine e) {
    (void)charlib::characterize_mux(32, 4, paper_n, 99, tech, e);
  }));
  flows.push_back(time_flow("arbiter/8m", paper_n, reps, [&](charlib::Engine e) {
    (void)charlib::characterize_arbiter(8, paper_n, 555, tech, e);
  }));
  flows.push_back(time_flow("decoder/64o-stress", stress_n, reps,
                            [&](charlib::Engine e) {
    (void)charlib::characterize_decoder(64, stress_n, 1234, tech, e);
  }));
  flows.push_back(time_flow("mux/32x16-stress", stress_n, reps,
                            [&](charlib::Engine e) {
    (void)charlib::characterize_mux(32, 16, stress_n, 99, tech, e);
  }));
  flows.push_back(time_flow("arbiter/16m-stress", stress_n, reps,
                            [&](charlib::Engine e) {
    (void)charlib::characterize_arbiter(16, stress_n, 555, tech, e);
  }));

  std::printf("\n%-20s %8s %12s %14s %8s\n", "characterization", "samples",
              "scalar ms", "bitparallel ms", "speedup");
  double total_scalar = 0.0, total_bitpar = 0.0;
  for (const FlowTiming& f : flows) {
    total_scalar += f.scalar_ms;
    total_bitpar += f.bitparallel_ms;
    std::printf("%-20s %8u %12.3f %14.3f %7.2fx\n", f.name.c_str(), f.samples,
                f.scalar_ms, f.bitparallel_ms, f.speedup());
  }
  std::printf("%-20s %8s %12.3f %14.3f %7.2fx\n", "aggregate", "", total_scalar,
              total_bitpar, total_bitpar > 0 ? total_scalar / total_bitpar : 0.0);

  write_json(out, smoke, tp, flows);
  std::printf("\nwrote %s\n", out.string().c_str());
  return 0;
}
