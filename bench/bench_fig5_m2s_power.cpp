// Reproduces Figure 5 of the paper: power dissipated by the multiplexer
// that sends data and control signals from the masters side to the
// slaves side (M2S) during the first 4 us -- the dominant sub-block.

#include <cstdio>

#include "common.hpp"
#include "power/report.hpp"

int main() {
  using namespace ahbp;

  bench::PaperSystem sys({.trace_window = sim::SimTime::ns(100)});
  std::puts("=== Figure 5: M2S multiplexer power consumption (first 4 us) ===\n");

  sys.run(sim::SimTime::us(4));
  sys.est->flush_trace();

  const power::PowerTrace& tr = *sys.est->trace();
  std::fputs(power::format_trace(tr, "m2s", sim::SimTime::us(4)).c_str(), stdout);

  double peak = 0.0;
  double e_m2s = 0.0, e_total = 0.0;
  for (const auto& p : tr.points()) {
    peak = std::max(peak, tr.power_m2s(p));
    e_m2s += p.energy.m2s;
    e_total += p.energy.total();
  }
  std::printf("\npeak M2S power: %s   M2S share of total energy: %.2f %%\n",
              power::format_power(peak).c_str(), 100.0 * e_m2s / e_total);
  if (e_m2s < 0.25 * e_total) {
    std::puts("SHAPE CHECK FAILED: M2S should be the dominant sub-block");
    return 1;
  }
  std::puts("SHAPE CHECK PASSED: the AHB data-path mux dominates.");
  return 0;
}
