// Live macromodel validation (extension of the paper's Sec. 5.1 SIS
// check): while the paper testbench runs, the generated gate-level
// address mux and arbiter are driven with the same live stimulus; their
// toggle-accounted energy is compared per cycle against the macromodels.
// This measures model accuracy under the *real workload's* activity
// distribution, not just synthetic stimulus.

#include <cstdio>

#include "common.hpp"
#include "power/cosim.hpp"
#include "power/report.hpp"

int main() {
  using namespace ahbp;

  bench::PaperSystem sys;
  power::GateLevelCrossCheck check(&sys.top, "cosim", sys.bus);

  std::puts("=== Live gate-level co-simulation validation (50 us workload) ===\n");
  sys.run(sim::SimTime::us(50));

  auto report = [](const char* name, const power::CosimSeries& s) {
    std::printf("%-24s model %-12s gate %-12s ratio %5.2f  corr %5.3f\n", name,
                power::format_energy(s.model_total()).c_str(),
                power::format_energy(s.gate_total()).c_str(), s.totals_ratio(),
                s.correlation());
  };
  report("address-path M2S mux", check.mux_series());
  report("arbiter FSM", check.arbiter_series());

  std::printf("\ncycles co-simulated: %llu\n",
              static_cast<unsigned long long>(check.cycles()));
  std::puts("interpretation: correlation shows the macromodels follow the");
  std::puts("cycle-by-cycle gate-level energy under real traffic; the totals");
  std::puts("ratio is the calibration factor a charlib re-fit would absorb.");

  const bool ok = check.mux_series().correlation() > 0.5 &&
                  check.arbiter_series().correlation() > 0.25;
  if (!ok) {
    std::puts("COSIM CHECK FAILED: macromodels decorrelated from gate level");
    return 1;
  }
  std::puts("COSIM CHECK PASSED.");
  return 0;
}
