// Reproduces Figure 3 of the paper: total AHB power consumption during
// the first 4 us of the testbench simulation. Prints the windowed power
// series and writes fig3_total_power.csv with all sub-block series.

#include <cstdio>
#include <fstream>

#include "common.hpp"
#include "power/report.hpp"

int main() {
  using namespace ahbp;

  bench::PaperSystem sys(
      {.trace_window = sim::SimTime::ns(100)});  // 10-cycle windows
  std::puts("=== Figure 3: total AHB power consumption (first 4 us) ===\n");

  sys.run(sim::SimTime::us(4));
  sys.est->flush_trace();

  const power::PowerTrace& tr = *sys.est->trace();
  std::fputs(power::format_trace(tr, "total", sim::SimTime::us(4)).c_str(), stdout);

  double peak = 0.0, mean = 0.0;
  for (const auto& p : tr.points()) {
    const double w = tr.power_total(p);
    peak = std::max(peak, w);
    mean += w;
  }
  mean /= static_cast<double>(tr.points().size());
  std::printf("\nwindows: %zu   mean power: %s   peak power: %s\n",
              tr.points().size(), power::format_power(mean).c_str(),
              power::format_power(peak).c_str());

  std::ofstream csv("fig3_total_power.csv");
  power::write_trace_csv(csv, tr);
  std::puts("full series written to fig3_total_power.csv");
  return 0;
}
