// Running firmware on the modeled SoC: assemble a small RV32I program
// with the encoder API, execute it on the CPU master over the AHB, and
// read the power analysis for exactly that piece of software -- the
// "energy cost of this code on this interconnect" question.
//
// The program computes a checksum over a data block and stores it to a
// mailbox address; the host (this example) verifies it independently.

#include <cstdio>

#include "ahb/ahb.hpp"
#include "cpu/cpu.hpp"
#include "power/power.hpp"
#include "sim/sim.hpp"

int main() {
  using namespace ahbp;
  using namespace ahbp::cpu;

  // --- assemble the firmware ------------------------------------------------
  // x2 = data pointer, x5 = word count, x10 = checksum (rotate-xor).
  std::vector<std::uint32_t> firmware;
  const std::uint32_t kData = 0x1000;
  const std::uint32_t kMailbox = 0x1FFC;
  const unsigned kWords = 64;
  {
    using namespace ahbp::cpu::enc;
    firmware = {
        lui(2, kData >> 12),       // x2 = data base
        addi(2, 2, kData & 0xFFF),
        addi(5, 0, kWords),        // x5 = count
        addi(10, 0, 0),            // x10 = checksum
        // loop:
        beq(5, 0, 36),             // -> done (9 instructions ahead)
        lw(1, 2, 0),               // load word
        xor_(10, 10, 1),           // checksum ^= word
        slli(11, 10, 1),           // rotate left by 1:
        srli(12, 10, 31),
        or_(10, 11, 12),
        addi(2, 2, 4),
        addi(5, 5, -1),
        jal(0, -32),               // -> loop
        // done: store checksum to the mailbox (li with hi/lo split)
        lui(3, static_cast<std::int32_t>((kMailbox + 0x800) >> 12)),
        addi(3, 3, static_cast<std::int32_t>(kMailbox << 20) >> 20),
        sw(10, 3, 0x0),
        ebreak(),
    };
  }

  std::puts("=== firmware disassembly ===");
  for (std::size_t i = 0; i < firmware.size(); ++i) {
    std::printf("  %04zx: %08x  %s\n", 4 * i, firmware[i],
                disassemble(firmware[i]).c_str());
  }

  // --- the SoC ---------------------------------------------------------------
  sim::Kernel kernel;
  sim::Module top(nullptr, "top");
  sim::Clock clk(&top, "clk", sim::SimTime::ns(10), 0.5, sim::SimTime::ns(10));
  ahb::AhbBus bus(&top, "ahb", clk);
  ahb::DefaultMaster dm(&top, "dm", bus);
  CpuMaster core(&top, "cpu", bus, {});
  ahb::MemorySlave rom(&top, "rom", bus, {.base = 0x0000, .size = 0x1000});
  ahb::MemorySlave ram(&top, "ram", bus, {.base = 0x1000, .size = 0x1000});
  load_program(rom, 0, firmware);

  // Test data + host-side reference checksum.
  std::uint32_t expected = 0;
  for (unsigned i = 0; i < kWords; ++i) {
    const std::uint32_t w = 0x9E3779B9u * (i + 1);
    ram.poke(4 * i, w);
    expected ^= w;
    expected = (expected << 1) | (expected >> 31);
  }

  bus.finalize();
  ahb::BusMonitor mon(&top, "mon", bus);
  power::AhbPowerEstimator est(&top, "power", bus);

  // --- run to halt -------------------------------------------------------------
  while (!core.halted() && kernel.now() < sim::SimTime::ms(1)) {
    kernel.run(sim::SimTime::us(10));
  }

  const std::uint32_t mailbox = ram.peek(kMailbox - 0x1000);
  std::printf("\nfirmware halted after %llu instructions in %s\n",
              static_cast<unsigned long long>(core.core().instret()),
              kernel.now().to_string().c_str());
  std::printf("checksum: firmware 0x%08x vs host 0x%08x -- %s\n", mailbox,
              expected, mailbox == expected ? "MATCH" : "MISMATCH");
  std::printf("bus ops : %llu fetches, %llu loads, %llu stores; %zu protocol "
              "violations\n",
              static_cast<unsigned long long>(core.stats().fetches),
              static_cast<unsigned long long>(core.stats().loads),
              static_cast<unsigned long long>(core.stats().stores),
              mon.violations().size());

  std::printf("\nenergy spent on the interconnect by this firmware: %s\n",
              power::format_energy(est.total_energy()).c_str());
  std::printf("  per executed instruction: %s\n",
              power::format_energy(est.total_energy() /
                                   static_cast<double>(core.core().instret()))
                  .c_str());
  std::fputs(power::format_block_breakdown(est.block_totals()).c_str(), stdout);
  return mailbox == expected ? 0 : 1;
}
