// A complete SoC built from every piece of the library: AHB with CPU-
// and DMA-class masters, memory slaves, an APB subsystem (register file
// + timer behind the bridge), hierarchical power analysis on both buses,
// and a DPM governor enforcing a system power budget.
//
// This is the "full AMBA system" of the paper's Sec. 5 background
// picture: high-performance bus for CPU/memory/DMA, bridged APB for
// peripherals -- with the power dimension visible end to end.

#include <cstdio>

#include "ahb/ahb.hpp"
#include "apb/apb.hpp"
#include "power/power.hpp"
#include "sim/sim.hpp"

int main() {
  using namespace ahbp;

  sim::Kernel kernel;
  sim::Module top(nullptr, "top");
  sim::Clock clk(&top, "clk", sim::SimTime::ns(10), 0.5, sim::SimTime::ns(10));

  // --- AHB: the high-performance system bus ------------------------------
  ahb::AhbBus bus(&top, "ahb", clk);
  ahb::DefaultMaster dm(&top, "default_master", bus);
  ahb::TrafficMaster cpu(&top, "cpu", bus,
                         {.addr_base = 0x0000, .addr_range = 0x2000, .seed = 5});
  ahb::BurstMaster dma(&top, "dma", bus,
                       {.addr_base = 0x2000,
                        .addr_range = 0x1000,
                        .burst = ahb::Burst::kIncr8,
                        .busy_percent = 10,
                        .seed = 6});
  ahb::MemorySlave sram(&top, "sram", bus, {.base = 0x0000, .size = 0x2000});
  ahb::MemorySlave dram(&top, "dram", bus,
                        {.base = 0x2000, .size = 0x1000, .wait_states = 1});

  // --- APB: the peripheral bus behind the bridge -------------------------
  apb::AhbToApbBridge bridge(&top, "apb_bridge", bus,
                             {.base = 0x8000, .size = 0x1000});
  apb::ApbRegisterFile sysregs(&top, "sysregs", bridge, 0x000, 0x100);
  apb::ApbTimer timer(&top, "timer", bridge, 0x100);

  // A housekeeping master that programs the timer via the bridge and
  // polls it now and then.
  ahb::ScriptedMaster housekeeping(
      &top, "housekeeping", bus,
      {
          {ahb::ScriptedMaster::Op::Kind::kWrite, 0x8100 + apb::ApbTimer::kCompare, 2000, 0},
          {ahb::ScriptedMaster::Op::Kind::kWrite, 0x8100 + apb::ApbTimer::kCtrl, 3, 0},
          {ahb::ScriptedMaster::Op::Kind::kIdle, 0, 0, 3000},
          {ahb::ScriptedMaster::Op::Kind::kRead, 0x8100 + apb::ApbTimer::kStatus, 0, 0},
          {ahb::ScriptedMaster::Op::Kind::kRead, 0x8100 + apb::ApbTimer::kCount, 0, 0},
      });

  bus.finalize();
  bridge.finalize();

  // --- observers: protocol, power (both buses), governor -----------------
  ahb::BusMonitor monitor(&top, "monitor", bus);
  power::AhbPowerEstimator ahb_power(&top, "ahb_power", bus);
  apb::ApbPowerMonitor apb_power(&top, "apb_power", bridge);
  power::PowerGovernor governor(
      &top, "governor", ahb_power,
      power::PowerGovernor::Config{.budget_watts = 0.9e-3, .window_cycles = 64});
  cpu.set_throttle(&governor.throttle());

  kernel.run(sim::SimTime::us(100));

  // --- the system power picture -------------------------------------------
  std::puts("=== SoC with power budget: 100 us @ 100 MHz ===\n");
  std::printf("cpu    : %llu transfers (%llu throttled cycles)\n",
              static_cast<unsigned long long>(cpu.stats().writes + cpu.stats().reads),
              static_cast<unsigned long long>(cpu.stats().throttled_cycles));
  std::printf("dma    : %llu beats in %llu bursts\n",
              static_cast<unsigned long long>(dma.stats().write_beats +
                                              dma.stats().read_beats),
              static_cast<unsigned long long>(dma.stats().bursts));
  std::printf("apb    : %llu writes, %llu reads through the bridge; timer=%u%s\n",
              static_cast<unsigned long long>(bridge.stats().apb_writes),
              static_cast<unsigned long long>(bridge.stats().apb_reads),
              timer.count(), timer.matched() ? " (compare matched)" : "");
  std::printf("checks : %zu protocol violations, %llu read mismatches\n\n",
              monitor.violations().size(),
              static_cast<unsigned long long>(cpu.stats().read_mismatches +
                                              dma.stats().read_mismatches));

  std::fputs(power::format_instruction_table(ahb_power.fsm()).c_str(), stdout);
  std::putchar('\n');
  std::fputs(power::format_block_breakdown(ahb_power.block_totals()).c_str(), stdout);
  std::putchar('\n');
  std::fputs(power::format_master_attribution(
                 ahb_power.fsm(), {"default", "cpu", "dma", "housekeeping"})
                 .c_str(),
             stdout);

  const double secs = kernel.now().to_seconds();
  // Whole-system roll-up: bus fabrics + memory cores (instruction-based
  // memory models in the style of the paper's ref [4]).
  const gate::Technology tech;
  power::MemoryEnergyModel sram_model(0x2000, tech), dram_model(0x1000, tech);
  power::SystemPowerSummary system;
  system.add("AHB fabric", ahb_power.total_energy());
  system.add("APB subsystem", apb_power.total_energy());
  system.add("sram", sram_model.total(sram.stats(), ahb_power.fsm().cycles()));
  system.add("dram", dram_model.total(dram.stats(), ahb_power.fsm().cycles()));
  std::putchar('\n');
  std::fputs(system.format(secs).c_str(), stdout);
  std::printf("governor  : %llu/%llu windows over the %s budget, peak %s\n",
              static_cast<unsigned long long>(governor.stats().over_budget_windows),
              static_cast<unsigned long long>(governor.stats().windows),
              power::format_power(governor.config().budget_watts).c_str(),
              power::format_power(governor.stats().peak_window_power).c_str());
  return 0;
}
