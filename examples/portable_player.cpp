// A portable-audio-player scenario -- the battery-powered device class
// the paper's introduction is about. A DMA-style master periodically
// streams audio frames from a flash-like slave (with wait states) to a
// zero-wait SRAM audio buffer, while a CPU-like master does sporadic
// random accesses. The power estimator produces the full report plus a
// power-vs-time CSV and a VCD waveform of the bus.
//
// Demonstrates: writing a custom master against the public API, mixing
// slave speeds, tracing (VCD + power CSV), and interpreting the
// instruction table for a bursty periodic workload.

#include <cstdio>
#include <fstream>

#include "ahb/ahb.hpp"
#include "power/power.hpp"
#include "sim/sim.hpp"

namespace {

using namespace ahbp;

/// A DMA engine: every `period` cycles, bursts `frame_words` words from
/// flash to the audio buffer (read + write per word), then sleeps.
class AudioDma final : public ahb::AhbMaster {
public:
  struct Config {
    std::uint32_t src_base = 0x2000;   ///< flash
    std::uint32_t dst_base = 0x0000;   ///< audio SRAM
    unsigned frame_words = 16;
    unsigned period_cycles = 200;
  };

  AudioDma(sim::Module* parent, std::string name, ahb::AhbBus& bus, Config cfg)
      : AhbMaster(parent, std::move(name), bus),
        cfg_(cfg),
        thread_(this, "proc", [this] { return body(); }) {}

  [[nodiscard]] std::uint64_t frames_moved() const { return frames_; }

private:
  sim::Task body() {
    ahb::BusSignals& bus = bus_signals();
    sim::Event& edge = clock().posedge_event();
    std::uint32_t frame = 0;

    for (;;) {
      // Sleep until the next frame is due.
      sig_.htrans.write(ahb::raw(ahb::Trans::kIdle));
      sig_.hbusreq.write(false);
      for (unsigned i = 0; i < cfg_.period_cycles; ++i) co_await wait(edge);

      // Acquire the bus.
      sig_.hbusreq.write(true);
      do {
        co_await wait(edge);
      } while (!(granted() && bus.hready.read()));

      // Move one frame: read src word, then write it to dst (pipelined
      // read->write per word, like a real single-channel DMA).
      for (unsigned w = 0; w < cfg_.frame_words; ++w) {
        const std::uint32_t src = cfg_.src_base + 4 * ((frame * cfg_.frame_words + w) % 256);
        const std::uint32_t dst = cfg_.dst_base + 4 * (w % 256);

        // READ address phase.
        sig_.htrans.write(ahb::raw(ahb::Trans::kNonSeq));
        sig_.haddr.write(src);
        sig_.hwrite.write(false);
        do {
          co_await wait(edge);
        } while (!bus.hready.read());

        // WRITE address phase; READ data phase completes at its end.
        sig_.htrans.write(ahb::raw(ahb::Trans::kNonSeq));
        sig_.haddr.write(dst);
        sig_.hwrite.write(true);
        do {
          co_await wait(edge);
        } while (!bus.hready.read());
        const std::uint32_t data = bus.hrdata.read();  // the word just read

        // WRITE data phase.
        sig_.htrans.write(ahb::raw(ahb::Trans::kIdle));
        sig_.hwdata.write(data);
        do {
          co_await wait(edge);
        } while (!bus.hready.read());
        if (w + 1 < cfg_.frame_words) {
          // Re-request ownership is kept: hbusreq still high.
        }
      }
      ++frames_;
      ++frame;
    }
  }

  Config cfg_;
  std::uint64_t frames_ = 0;
  sim::Thread thread_;
};

}  // namespace

int main() {
  using namespace ahbp;

  sim::Kernel kernel;
  sim::Module top(nullptr, "top");
  sim::Clock clk(&top, "clk", sim::SimTime::ns(10), 0.5, sim::SimTime::ns(10));
  ahb::AhbBus bus(&top, "ahb", clk);

  ahb::DefaultMaster dm(&top, "default_master", bus);
  AudioDma dma(&top, "audio_dma", bus, {});
  ahb::TrafficMaster cpu(&top, "cpu", bus,
                         {.addr_base = 0x1000,
                          .addr_range = 0x1000,
                          .min_idle_cycles = 20,
                          .max_idle_cycles = 120,
                          .min_pairs = 1,
                          .max_pairs = 4,
                          .seed = 7});

  ahb::MemorySlave audio_ram(&top, "audio_ram", bus, {.base = 0x0000, .size = 0x1000});
  ahb::MemorySlave work_ram(&top, "work_ram", bus, {.base = 0x1000, .size = 0x1000});
  ahb::MemorySlave flash(&top, "flash", bus,
                         {.base = 0x2000, .size = 0x1000, .wait_states = 2});

  bus.finalize();
  ahb::BusMonitor mon(&top, "monitor", bus);
  power::AhbPowerEstimator est(
      &top, "power", bus,
      power::AhbPowerEstimator::Config{.trace_window = sim::SimTime::ns(200)});

  // Waveform of the interesting bus signals.
  sim::VcdWriter vcd("portable_player.vcd", kernel);
  vcd.add(clk.signal());
  vcd.add(bus.bus().haddr, 32);
  vcd.add(bus.bus().htrans, 2);
  vcd.add(bus.bus().hwrite);
  vcd.add(bus.bus().hready);
  vcd.add(bus.bus().hmaster, 4);

  kernel.run(sim::SimTime::us(100));
  est.flush_trace();

  std::printf("=== portable player: 100 us @ 100 MHz ===\n");
  std::printf("audio frames streamed : %llu\n",
              static_cast<unsigned long long>(dma.frames_moved()));
  std::printf("cpu transfers         : %llu writes, %llu reads (%llu mismatches)\n",
              static_cast<unsigned long long>(cpu.stats().writes),
              static_cast<unsigned long long>(cpu.stats().reads),
              static_cast<unsigned long long>(cpu.stats().read_mismatches));
  std::printf("bus transfers total   : %llu (%llu wait cycles)\n",
              static_cast<unsigned long long>(mon.stats().transfers),
              static_cast<unsigned long long>(mon.stats().wait_cycles));
  std::printf("protocol violations   : %zu\n\n", mon.violations().size());

  std::fputs(power::format_instruction_table(est.fsm()).c_str(), stdout);
  std::putchar('\n');
  std::fputs(power::format_block_breakdown(est.block_totals()).c_str(), stdout);

  std::ofstream csv("portable_player_power.csv");
  power::write_trace_csv(csv, *est.trace());
  std::puts("\npower trace written to portable_player_power.csv");
  std::puts("bus waveform written to portable_player.vcd");

  const double avg_power = est.total_energy() / kernel.now().to_seconds();
  std::printf("average bus power: %s -- at a 1000 mAh / 3.7 V battery, the bus\n"
              "fabric alone would account for %.5f %% of the budget.\n",
              power::format_power(avg_power).c_str(),
              100.0 * avg_power / (1.0 * 3.7));
  return 0;
}
