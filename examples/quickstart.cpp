// Quickstart: build an AHB system, attach the power estimator, run, and
// read the instruction-level energy report.
//
//   $ ./quickstart
//
// This is the 40-line tour of the public API:
//   1. a Kernel + Clock + AhbBus,
//   2. masters and slaves self-attach to the bus,
//   3. bus.finalize() wires arbiter/decoder/muxes,
//   4. AhbPowerEstimator samples the bus and runs the power FSM,
//   5. report helpers render Table-1-style results.

#include <cstdio>

#include "ahb/ahb.hpp"
#include "power/power.hpp"
#include "sim/sim.hpp"

int main() {
  using namespace ahbp;

  // 1. Simulation kernel and a 100 MHz clock.
  sim::Kernel kernel;
  sim::Module top(nullptr, "top");
  sim::Clock clk(&top, "clk", sim::SimTime::ns(10), 0.5, sim::SimTime::ns(10));

  // 2. The bus and its agents.
  ahb::AhbBus bus(&top, "ahb", clk);
  ahb::DefaultMaster idle_master(&top, "default_master", bus);
  ahb::TrafficMaster cpu(&top, "cpu", bus,
                         {.addr_base = 0x0000, .addr_range = 0x1000, .seed = 42});
  ahb::MemorySlave ram(&top, "ram", bus, {.base = 0x0000, .size = 0x1000});

  // 3. Elaborate the fabric, then attach observers.
  bus.finalize();
  ahb::BusMonitor monitor(&top, "monitor", bus);
  power::AhbPowerEstimator estimator(&top, "power", bus);

  // 4. Run 10 us of simulated time.
  kernel.run(sim::SimTime::us(10));

  // 5. Results.
  std::printf("simulated %s, %llu bus transfers, 0 protocol violations: %s\n\n",
              kernel.now().to_string().c_str(),
              static_cast<unsigned long long>(monitor.stats().transfers),
              monitor.violations().empty() ? "yes" : "NO");
  std::fputs(power::format_instruction_table(estimator.fsm()).c_str(), stdout);
  std::putchar('\n');
  std::fputs(power::format_block_breakdown(estimator.block_totals()).c_str(),
             stdout);
  std::printf("\nwhere to optimize: %.1f %% of the energy is in the data path,\n"
              "%.1f %% in arbitration -- concentrate on the AHB data-path.\n",
              100.0 * power::data_transfer_share(estimator.fsm()),
              100.0 * power::arbitration_share(estimator.fsm()));
  return 0;
}
