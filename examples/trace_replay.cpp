// Trace-driven power analysis: record the bus transactions of a live
// run into a portable text trace, then replay them on a fresh system and
// compare the power pictures -- the synthetic stand-in for feeding
// production traces into the methodology (we have no production traces;
// see DESIGN.md, Substitutions).
//
// Flow: run -> record -> save bus.trace -> load -> replay -> compare.

#include <cstdio>
#include <fstream>
#include <sstream>

#include "ahb/ahb.hpp"
#include "power/power.hpp"
#include "sim/sim.hpp"

namespace {

using namespace ahbp;

struct PowerSummary {
  double energy = 0.0;
  double data_share = 0.0;
  power::BlockEnergy blocks;
};

}  // namespace

int main() {
  // --- phase 1: live run, recorded ----------------------------------------
  ahb::TransactionTrace recorded;
  PowerSummary original;
  {
    sim::Kernel kernel;
    sim::Module top(nullptr, "top");
    sim::Clock clk(&top, "clk", sim::SimTime::ns(10), 0.5, sim::SimTime::ns(10));
    ahb::AhbBus bus(&top, "ahb", clk);
    ahb::DefaultMaster dm(&top, "dm", bus);
    ahb::TrafficMaster cpu(&top, "cpu", bus,
                           {.addr_base = 0, .addr_range = 0x800, .seed = 2003});
    ahb::MemorySlave ram(&top, "ram", bus, {.base = 0, .size = 0x1000});
    bus.finalize();
    ahb::TraceRecorder recorder(&top, "recorder", bus);
    power::AhbPowerEstimator est(&top, "power", bus);

    kernel.run(sim::SimTime::us(20));
    recorded = recorder.trace().filter_master(cpu.index());
    original.energy = est.total_energy();
    original.data_share = power::data_transfer_share(est.fsm());
    original.blocks = est.block_totals();
    std::printf("recorded %zu transfers from a %s live run\n", recorded.size(),
                kernel.now().to_string().c_str());
  }

  // --- phase 2: persist and reload (the trace is a portable artifact) -----
  {
    std::ofstream out("bus.trace");
    recorded.save(out);
  }
  ahb::TransactionTrace loaded;
  {
    std::ifstream in("bus.trace");
    loaded = ahb::TransactionTrace::load(in);
  }
  std::printf("trace round-tripped through bus.trace: %zu transfers\n",
              loaded.size());

  // --- phase 3: replay on a fresh system ----------------------------------
  PowerSummary replayed;
  std::uint64_t mismatches = 0;
  {
    sim::Kernel kernel;
    sim::Module top(nullptr, "top");
    sim::Clock clk(&top, "clk", sim::SimTime::ns(10), 0.5, sim::SimTime::ns(10));
    ahb::AhbBus bus(&top, "ahb", clk);
    ahb::DefaultMaster dm(&top, "dm", bus);
    ahb::TraceMaster replay(&top, "replay", bus, loaded);
    ahb::MemorySlave ram(&top, "ram", bus, {.base = 0, .size = 0x1000});
    bus.finalize();
    power::AhbPowerEstimator est(&top, "power", bus);

    while (!replay.finished() && kernel.now() < sim::SimTime::ms(1)) {
      kernel.run(sim::SimTime::us(10));
    }
    replayed.energy = est.total_energy();
    replayed.data_share = power::data_transfer_share(est.fsm());
    replayed.blocks = est.block_totals();
    mismatches = replay.stats().read_mismatches;
    std::printf("replayed %llu transfers in %s (%llu read mismatches)\n\n",
                static_cast<unsigned long long>(replay.stats().replayed),
                kernel.now().to_string().c_str(),
                static_cast<unsigned long long>(mismatches));
  }

  // --- compare --------------------------------------------------------------
  std::printf("%-22s %14s %14s\n", "", "original", "replayed");
  std::printf("%-22s %14s %14s\n", "bus energy",
              power::format_energy(original.energy).c_str(),
              power::format_energy(replayed.energy).c_str());
  std::printf("%-22s %13.1f%% %13.1f%%\n", "data-path share",
              100 * original.data_share, 100 * replayed.data_share);
  std::printf("%-22s %13.1f%% %13.1f%%\n", "M2S share",
              100 * original.blocks.m2s / original.blocks.total(),
              100 * replayed.blocks.m2s / replayed.blocks.total());

  std::puts("\nthe replayed workload reproduces the recorded transfer stream");
  std::puts("and lands on a comparable power picture -- trace-driven analysis");
  std::puts("without the original masters present.");
  std::remove("bus.trace");
  return mismatches == 0 ? 0 : 1;
}
