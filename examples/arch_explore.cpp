// Architecture exploration -- the use case the paper's introduction
// motivates: "in a small time it is possible to evaluate hundreds of
// different configurations and architectures in order to reach the
// desired trade-offs in terms of speed, throughput and power".
//
// Sweeps arbitration policy, slave wait states and slave count for the
// same workload, reporting throughput (completed transfers) against
// total bus energy, so a designer can pick the architecture before any
// RTL exists.

#include <cstdio>
#include <memory>
#include <vector>

#include "ahb/ahb.hpp"
#include "campaign/campaign.hpp"
#include "gate/area.hpp"
#include "power/power.hpp"
#include "sim/sim.hpp"

namespace {

using namespace ahbp;

/// One configuration as a campaign spec: the whole system (kernel
/// included) is built, run and torn down on the worker thread; fixed
/// seeds make every rerun bit-identical.
campaign::RunSpec config_spec(ahb::ArbitrationPolicy policy, unsigned wait_states,
                              unsigned n_slaves) {
  return {"cfg", [policy, wait_states, n_slaves] {
            sim::Kernel kernel;
            sim::Module top(nullptr, "top");
            sim::Clock clk(&top, "clk", sim::SimTime::ns(10), 0.5,
                           sim::SimTime::ns(10));
            ahb::AhbBus bus(&top, "ahb", clk, ahb::AhbBus::Config{.policy = policy});

            ahb::DefaultMaster dm(&top, "dm", bus);
            ahb::TrafficMaster m1(
                &top, "m1", bus,
                {.addr_base = 0x0000, .addr_range = 0x1000, .seed = 1});
            ahb::TrafficMaster m2(
                &top, "m2", bus,
                {.addr_base = 0x1000, .addr_range = 0x1000, .seed = 2});

            std::vector<std::unique_ptr<ahb::MemorySlave>> slaves;
            for (unsigned s = 0; s < n_slaves; ++s) {
              slaves.push_back(std::make_unique<ahb::MemorySlave>(
                  &top, "s" + std::to_string(s), bus,
                  ahb::MemorySlave::Config{.base = 0x1000u * s,
                                           .size = 0x1000,
                                           .wait_states = wait_states}));
            }
            bus.finalize();
            ahb::BusMonitor mon(&top, "mon", bus);
            power::AhbPowerEstimator est(&top, "power", bus);

            kernel.run(sim::SimTime::us(50));

            campaign::PowerReport r;
            r.total_energy = est.total_energy();
            r.blocks = est.block_totals();
            r.cycles = est.fsm().cycles();
            r.transfers = mon.stats().transfers;
            r.metrics["handovers"] = static_cast<double>(mon.stats().handovers);
            return r;
          }};
}

const char* policy_name(ahb::ArbitrationPolicy p) {
  return p == ahb::ArbitrationPolicy::kFixedPriority ? "fixed-priority"
                                                     : "round-robin";
}

}  // namespace

int main() {
  // Enumerate the configuration grid, fan it across cores, then render
  // the table in grid order (outcomes come back ordered by spec index).
  struct Cfg {
    ahb::ArbitrationPolicy policy;
    unsigned waits;
    unsigned n_slaves;
  };
  std::vector<Cfg> grid;
  std::vector<campaign::RunSpec> specs;
  for (const auto policy : {ahb::ArbitrationPolicy::kFixedPriority,
                            ahb::ArbitrationPolicy::kRoundRobin}) {
    for (const unsigned waits : {0u, 1u, 3u}) {
      for (const unsigned n_slaves : {2u, 3u, 6u}) {
        grid.push_back({policy, waits, n_slaves});
        specs.push_back(config_spec(policy, waits, n_slaves));
      }
    }
  }
  const campaign::Campaign pool;
  const auto outcomes = pool.run(specs);

  std::puts("=== Architecture exploration: power/performance/area per configuration ===");
  std::printf("workload: 2 traffic masters, 50 us @ 100 MHz (%zu configs on %u threads)\n\n",
              grid.size(), pool.threads());
  std::printf("%-16s %6s %7s | %10s %10s %14s %16s %12s\n", "policy", "waits",
              "slaves", "transfers", "handovers", "total energy",
              "energy/transfer", "area (GE)");

  for (std::size_t i = 0; i < grid.size(); ++i) {
    const Cfg& c = grid[i];
    const campaign::PowerReport& r = outcomes[i].report;
    const double e_per_t = r.transfers > 0
                               ? r.total_energy / static_cast<double>(r.transfers)
                               : 0.0;
    // The cost axis: NAND2-equivalent fabric area (3 masters incl.
    // the default master; +1 slave for the built-in default slave).
    const double area = gate::estimate_ahb_area(3, c.n_slaves + 1).total();
    std::printf("%-16s %6u %7u | %10llu %10llu %14s %16s %12.0f\n",
                policy_name(c.policy), c.waits, c.n_slaves,
                static_cast<unsigned long long>(r.transfers),
                static_cast<unsigned long long>(r.metrics.at("handovers")),
                power::format_energy(r.total_energy).c_str(),
                power::format_energy(e_per_t).c_str(), area);
  }

  std::puts("\nreading the table:");
  std::puts(" * wait states cut throughput but also total switching energy --");
  std::puts("   energy per completed transfer is the metric to compare;");
  std::puts(" * extra slaves grow the decoder (n_O) and S2M mux, visible in");
  std::puts("   energy/transfer even at identical throughput;");
  std::puts(" * arbitration policy barely moves energy: the data-path dominates,");
  std::puts("   exactly the paper's conclusion.");
  return 0;
}
