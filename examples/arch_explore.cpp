// Architecture exploration -- the use case the paper's introduction
// motivates: "in a small time it is possible to evaluate hundreds of
// different configurations and architectures in order to reach the
// desired trade-offs in terms of speed, throughput and power".
//
// Sweeps arbitration policy, slave wait states and slave count for the
// same workload, reporting throughput (completed transfers) against
// total bus energy, so a designer can pick the architecture before any
// RTL exists.

#include <cstdio>
#include <memory>
#include <vector>

#include "ahb/ahb.hpp"
#include "gate/area.hpp"
#include "power/power.hpp"
#include "sim/sim.hpp"

namespace {

using namespace ahbp;

struct RunResult {
  std::uint64_t transfers = 0;
  std::uint64_t handovers = 0;
  double energy = 0.0;
  double energy_per_transfer = 0.0;
};

RunResult run_config(ahb::ArbitrationPolicy policy, unsigned wait_states,
                     unsigned n_slaves) {
  sim::Kernel kernel;
  sim::Module top(nullptr, "top");
  sim::Clock clk(&top, "clk", sim::SimTime::ns(10), 0.5, sim::SimTime::ns(10));
  ahb::AhbBus bus(&top, "ahb", clk, ahb::AhbBus::Config{.policy = policy});

  ahb::DefaultMaster dm(&top, "dm", bus);
  ahb::TrafficMaster m1(&top, "m1", bus,
                        {.addr_base = 0x0000, .addr_range = 0x1000, .seed = 1});
  ahb::TrafficMaster m2(&top, "m2", bus,
                        {.addr_base = 0x1000, .addr_range = 0x1000, .seed = 2});

  std::vector<std::unique_ptr<ahb::MemorySlave>> slaves;
  for (unsigned s = 0; s < n_slaves; ++s) {
    slaves.push_back(std::make_unique<ahb::MemorySlave>(
        &top, "s" + std::to_string(s), bus,
        ahb::MemorySlave::Config{.base = 0x1000u * s,
                                 .size = 0x1000,
                                 .wait_states = wait_states}));
  }
  bus.finalize();
  ahb::BusMonitor mon(&top, "mon", bus);
  power::AhbPowerEstimator est(&top, "power", bus);

  kernel.run(sim::SimTime::us(50));

  RunResult r;
  r.transfers = mon.stats().transfers;
  r.handovers = mon.stats().handovers;
  r.energy = est.total_energy();
  r.energy_per_transfer =
      r.transfers > 0 ? r.energy / static_cast<double>(r.transfers) : 0.0;
  return r;
}

const char* policy_name(ahb::ArbitrationPolicy p) {
  return p == ahb::ArbitrationPolicy::kFixedPriority ? "fixed-priority"
                                                     : "round-robin";
}

}  // namespace

int main() {
  std::puts("=== Architecture exploration: power/performance/area per configuration ===");
  std::puts("workload: 2 traffic masters, 50 us @ 100 MHz\n");
  std::printf("%-16s %6s %7s | %10s %10s %14s %16s %12s\n", "policy", "waits",
              "slaves", "transfers", "handovers", "total energy",
              "energy/transfer", "area (GE)");

  for (const auto policy : {ahb::ArbitrationPolicy::kFixedPriority,
                            ahb::ArbitrationPolicy::kRoundRobin}) {
    for (const unsigned waits : {0u, 1u, 3u}) {
      for (const unsigned n_slaves : {2u, 3u, 6u}) {
        const RunResult r = run_config(policy, waits, n_slaves);
        // The cost axis: NAND2-equivalent fabric area (3 masters incl.
        // the default master; +1 slave for the built-in default slave).
        const double area = gate::estimate_ahb_area(3, n_slaves + 1).total();
        std::printf("%-16s %6u %7u | %10llu %10llu %14s %16s %12.0f\n",
                    policy_name(policy), waits, n_slaves,
                    static_cast<unsigned long long>(r.transfers),
                    static_cast<unsigned long long>(r.handovers),
                    power::format_energy(r.energy).c_str(),
                    power::format_energy(r.energy_per_transfer).c_str(), area);
      }
    }
  }

  std::puts("\nreading the table:");
  std::puts(" * wait states cut throughput but also total switching energy --");
  std::puts("   energy per completed transfer is the metric to compare;");
  std::puts(" * extra slaves grow the decoder (n_O) and S2M mux, visible in");
  std::puts("   energy/transfer even at identical throughput;");
  std::puts(" * arbitration policy barely moves energy: the data-path dominates,");
  std::puts("   exactly the paper's conclusion.");
  return 0;
}
