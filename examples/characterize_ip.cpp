// IP characterization walkthrough (paper Sec. 3): take a parameterized
// block, generate its gate-level structure, drive it with activity-
// controlled testbenches, fit an energy macromodel, and validate the
// closed form -- the complete flow a core vendor would run once per IP
// before shipping the power-annotated executable model.

#include <cstdio>

#include "charlib/charlib.hpp"
#include "gate/gate.hpp"

int main() {
  using namespace ahbp;

  std::puts("=== Characterizing the AHB address decoder as an IP block ===\n");

  // 1. The IP parameter: this SoC will have 4 slaves.
  constexpr unsigned kSlaves = 4;

  // 2. Generate the reference structure (one-hot decoder, NOT+AND gates,
  //    as in the paper) and show its BLIF -- what we would have fed SIS.
  gate::DecoderNetlist dec = gate::build_onehot_decoder(kSlaves);
  std::printf("generated decoder: %zu gates, %zu nets, %zu inputs, %zu outputs\n\n",
              dec.nl.gate_count(), dec.nl.net_count(), dec.nl.inputs().size(),
              dec.nl.outputs().size());
  std::puts("BLIF (SIS interchange format):");
  std::fputs(dec.nl.to_blif("ahb_decoder_4").c_str(), stdout);

  // 3. Run the characterization: mixed-activity stimulus, gate-level
  //    toggle-energy measurement, least-squares fit.
  const auto result = charlib::characterize_decoder(kSlaves, 4000, 2026);
  std::printf("\ncharacterization: %zu samples\n", result.samples.size());
  std::printf("fitted macromodel: E = %.3e + %.3e * HD_IN  (R^2 = %.4f)\n",
              result.fit.coefficients[0], result.fit.coefficients[1],
              result.fit.r_squared);

  // 4. Compare with the paper's closed form.
  const gate::Technology tech;
  power::DecoderModel paper(kSlaves, tech);
  std::puts("\npaper closed form E_DEC = VDD^2/4 (nO nI C_PD HD_IN + 2 HD_OUT C_O):");
  std::printf("%8s %16s %16s\n", "HD_IN", "fitted model", "paper model");
  for (unsigned hd = 0; hd <= paper.n_inputs(); ++hd) {
    const double fitted =
        result.fit.coefficients[0] + result.fit.coefficients[1] * hd;
    std::printf("%8u %15.3e %15.3e\n", hd, fitted, paper.energy(hd));
  }
  std::printf("\nclosed-form vs gate level over the stimulus run: %.1f %% mean error\n",
              100.0 * result.paper_model.mean_rel_error);

  // 5. The same flow for the mux, demonstrating coefficient calibration.
  std::puts("\n=== Re-fitting the M2S mux coefficients for this SoC ===");
  const auto mux = charlib::characterize_mux(32, 3, 4000, 2027);
  std::printf("default coefficients : k_in=%.2f k_sel=%.2f k_out=%.2f -> %.1f %% error\n",
              power::MuxModel::Coefficients{}.k_in,
              power::MuxModel::Coefficients{}.k_sel,
              power::MuxModel::Coefficients{}.k_out,
              100.0 * mux.default_model.mean_rel_error);
  std::printf("fitted coefficients  : k_in=%.2f k_sel=%.2f k_out=%.2f -> %.1f %% error\n",
              mux.calibrated.k_in, mux.calibrated.k_sel, mux.calibrated.k_out,
              100.0 * mux.fitted_model.mean_rel_error);
  std::puts("\nuse the fitted coefficients in MuxModel / PowerFsm to sharpen the");
  std::puts("system-level estimate for this particular technology and structure.");
  return 0;
}
